module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource

type tenant = {
  tn_name : string;
  tn_weight : int;
  tn_order : int;
  mutable tn_grants : int;
  mutable tn_bytes : int;
  mutable tn_busy_ns : int;
  mutable tn_wait_ns : int;
  mutable tn_delayed : int;
  mutable tn_rejected : int;
  mutable tn_window_off : int;
  mutable tn_window_len : int;
}

type decision = Admit | Delay of int | Reject

type t = {
  lane : Resource.t;
  bandwidth : int;
  period : int;
  mutable tenants : tenant list; (* registration order, newest last *)
  mutable busy_ns : int;
}

let create ~name ~bandwidth ~period_ns =
  assert (bandwidth > 0 && period_ns > 0);
  {
    lane = Resource.create ~name;
    bandwidth;
    period = period_ns;
    tenants = [];
    busy_ns = 0;
  }

(* Weighted TDM layout: tenant windows tile the period in registration
   order, each [period * w / sum_w] wide.  Integer division leaves the
   remainder as slack at the end of the period — slack absorbs flush
   tails rather than being handed to the last tenant. *)
let assign_windows t =
  let sum_w = List.fold_left (fun a tn -> a + tn.tn_weight) 0 t.tenants in
  let off = ref 0 in
  List.iter
    (fun tn ->
      tn.tn_window_off <- !off;
      tn.tn_window_len <- t.period * tn.tn_weight / max 1 sum_w;
      off := !off + tn.tn_window_len)
    t.tenants

let register t ~name ?(weight = 1) () =
  assert (weight > 0);
  let tn =
    {
      tn_name = name;
      tn_weight = weight;
      tn_order = List.length t.tenants;
      tn_grants = 0;
      tn_bytes = 0;
      tn_busy_ns = 0;
      tn_wait_ns = 0;
      tn_delayed = 0;
      tn_rejected = 0;
      tn_window_off = 0;
      tn_window_len = 0;
    }
  in
  t.tenants <- t.tenants @ [ tn ];
  assign_windows t;
  tn

let tenant_name tn = tn.tn_name
let window _t tn = (tn.tn_window_off, tn.tn_window_len)

let submit t tn ~now ~bytes =
  let duration = Cost.transfer_time ~bandwidth:t.bandwidth bytes in
  let start, completion = Resource.submit_timed t.lane ~now ~duration in
  tn.tn_grants <- tn.tn_grants + 1;
  tn.tn_bytes <- tn.tn_bytes + bytes;
  tn.tn_busy_ns <- tn.tn_busy_ns + duration;
  tn.tn_wait_ns <- tn.tn_wait_ns + (start - now);
  t.busy_ns <- t.busy_ns + duration;
  completion

let admit t tn ~now ~est_bytes =
  let est_ns = Cost.transfer_time ~bandwidth:t.bandwidth est_bytes in
  if est_ns > tn.tn_window_len then Reject
  else begin
    let pos = now mod t.period in
    let in_window =
      pos >= tn.tn_window_off && pos + est_ns <= tn.tn_window_off + tn.tn_window_len
    in
    if in_window then Admit
    else
      (* Distance to the next opening of this tenant's window. *)
      let d =
        if pos < tn.tn_window_off then tn.tn_window_off - pos
        else t.period - pos + tn.tn_window_off
      in
      Delay d
  end

let note_delayed _t tn = tn.tn_delayed <- tn.tn_delayed + 1
let note_rejected _t tn = tn.tn_rejected <- tn.tn_rejected + 1

type tenant_stats = {
  ts_name : string;
  ts_weight : int;
  ts_grants : int;
  ts_bytes : int;
  ts_busy_ns : int;
  ts_wait_ns : int;
  ts_delayed : int;
  ts_rejected : int;
}

let stats _t tn =
  {
    ts_name = tn.tn_name;
    ts_weight = tn.tn_weight;
    ts_grants = tn.tn_grants;
    ts_bytes = tn.tn_bytes;
    ts_busy_ns = tn.tn_busy_ns;
    ts_wait_ns = tn.tn_wait_ns;
    ts_delayed = tn.tn_delayed;
    ts_rejected = tn.tn_rejected;
  }

let all_stats t = List.map (fun tn -> stats t tn) t.tenants
let lane_busy_ns t = t.busy_ns

let accounting_ok t =
  List.fold_left (fun a tn -> a + tn.tn_busy_ns) 0 t.tenants = t.busy_ns
