(* Table 7: Aurora full-checkpoint performance versus CRIU and Redis' own
   RDB mechanism, for a 500 MiB Redis instance. *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Vfs = Aurora_kern.Vfs
module Striped = Aurora_block.Striped
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Store = Aurora_objstore.Store
module Criu = Aurora_criu.Criu
module Redis_sim = Aurora_apps.Redis_sim
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

type breakdown = {
  os_state : int option;
  memory : int option;
  stop : int;
  io_write : int;
}

let aurora () =
  let sys = Sls.boot () in
  let redis = Redis_sim.create ~machine:sys.Sls.machine ~resident_mib:500 () in
  let group = Sls.attach sys [ Redis_sim.proc redis ] in
  let clk = sys.Sls.machine.Machine.clock in
  let t0 = Clock.now clk in
  let stats = Group.checkpoint group in
  let resume_at = Clock.now clk in
  Store.wait_durable sys.Sls.store;
  {
    os_state = Some stats.Group.os_serialize_ns;
    memory = Some stats.Group.mem_mark_ns;
    stop = stats.Group.stop_ns;
    io_write = Clock.now clk - resume_at + (resume_at - t0 - stats.Group.stop_ns);
  }

let criu () =
  let machine = Machine.create () in
  Machine.mount machine (Vfs.ram_ops ~clock:machine.Machine.clock);
  let redis = Redis_sim.create ~machine ~resident_mib:500 () in
  let b, _ = Criu.checkpoint machine [ Redis_sim.proc redis ] in
  {
    os_state = Some b.Criu.os_state_ns;
    memory = Some b.Criu.memory_copy_ns;
    stop = b.Criu.total_stop_ns;
    io_write = b.Criu.io_write_ns;
  }

let rdb () =
  let machine = Machine.create () in
  Machine.mount machine (Vfs.ram_ops ~clock:machine.Machine.clock);
  let redis = Redis_sim.create ~machine ~resident_mib:500 () in
  let dev = Striped.create () in
  let b = Redis_sim.rdb_save redis ~dev in
  {
    os_state = None;
    memory = None;
    stop = b.Redis_sim.fork_stop_ns;
    io_write = b.Redis_sim.serialize_write_ns;
  }

let cell = function Some ns -> Units.ns_to_string ns | None -> "N/A"

let run () =
  print_endline "Table 7: full checkpoint, 500 MiB Redis — Aurora vs CRIU vs RDB";
  print_endline
    "(paper: Aurora 0.3/3.7/4.0 ms stop, 97.6 ms IO; CRIU 49/413/462/350 ms;";
  print_endline "        RDB stop 8 ms, IO 300 ms)";
  print_newline ();
  let a = aurora () and c = criu () and r = rdb () in
  let t = Text_table.create ~header:[ "Type"; "Aurora"; "CRIU"; "RDB" ] in
  Text_table.add_row t [ "OS State"; cell a.os_state; cell c.os_state; cell r.os_state ];
  Text_table.add_row t [ "Memory"; cell a.memory; cell c.memory; cell r.memory ];
  Text_table.add_row t
    [
      "Total Stop Time";
      Units.ns_to_string a.stop;
      Units.ns_to_string c.stop;
      Units.ns_to_string r.stop;
    ];
  Text_table.add_row t
    [
      "IO Write";
      Units.ns_to_string a.io_write;
      Units.ns_to_string c.io_write;
      Units.ns_to_string r.io_write;
    ];
  Text_table.print t;
  print_newline ()
