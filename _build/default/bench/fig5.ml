(* Figure 5: Memcached latency with throughput pegged at 120 k ops/s over
   varying checkpoint periods — the worst case for transparent
   persistence, since there is no queueing to hide behind. *)

module Memcached_bench = Aurora_apps.Memcached_bench
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let periods_ms = [ 5; 10; 20; 40; 60; 80; 100 ]

let run_point period_ns =
  Memcached_bench.run
    {
      Memcached_bench.period_ns;
      load = Memcached_bench.Open_poisson 120_000.0;
      duration_ns = 400_000_000;
      nkeys = 500_000;
      seed = 23;
      ext_sync = false;
    }

let run () =
  print_endline "Figure 5: Memcached latency at a fixed 120 kops/s load";
  print_endline "(paper: baseline avg 157 us; with persistence the tail grows)";
  print_newline ();
  let t =
    Text_table.create ~header:[ "Period"; "Avg latency"; "95th latency" ]
  in
  let row label o =
    Text_table.add_row t
      [
        label;
        Units.ns_to_string (int_of_float o.Memcached_bench.avg_latency_ns);
        Units.ns_to_string (int_of_float o.Memcached_bench.p95_latency_ns);
      ]
  in
  row "baseline" (run_point None);
  List.iter
    (fun ms -> row (Printf.sprintf "%d ms" ms) (run_point (Some (ms * Units.ms))))
    periods_ms;
  Text_table.print t;
  print_newline ()
