(* Figure 3: FileBench microbenchmarks comparing the Aurora file system /
   object store to ZFS (with and without checksumming) and FFS. *)

module Filebench = Aurora_workloads.Filebench
module Aurora_bench = Aurora_fs.Aurora_bench
module Zfs_model = Aurora_fs.Zfs_model
module Ffs_model = Aurora_fs.Ffs_model
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let filesystems () =
  [
    ("ZFS", fun () -> Zfs_model.make ~checksum:false ());
    ("ZFS+CSUM", fun () -> Zfs_model.make ~checksum:true ());
    ("FFS", fun () -> Ffs_model.make ());
    ("Aurora", fun () -> Aurora_bench.make ());
  ]

let gib x = Printf.sprintf "%.2f GiB/s" x
let kops x = Printf.sprintf "%.1f kops/s" (x /. 1000.0)

let write_panel ~io_size ~total =
  let t = Text_table.create ~header:[ "FS"; "Random"; "Sequential" ] in
  List.iter
    (fun (name, make) ->
      let rand =
        Filebench.throughput_gib_s
          (Filebench.random_write (make ()) ~io_size ~total ~seed:42)
      in
      let seq =
        Filebench.throughput_gib_s
          (Filebench.sequential_write (make ()) ~io_size ~total)
      in
      Text_table.add_row t [ name; gib rand; gib seq ])
    (filesystems ());
  Text_table.print t;
  print_newline ()

let ops_panel () =
  let t =
    Text_table.create ~header:[ "FS"; "createfiles"; "fsync 4KiB"; "fsync 64KiB" ]
  in
  List.iter
    (fun (name, make) ->
      let create =
        Filebench.ops_per_sec
          (Filebench.create_files (make ()) ~count:3000 ~mean_size:(16 * Units.kib)
             ~seed:7)
      in
      let f4 =
        Filebench.ops_per_sec
          (Filebench.write_fsync (make ()) ~io_size:(4 * Units.kib) ~count:3000)
      in
      let f64 =
        Filebench.ops_per_sec
          (Filebench.write_fsync (make ()) ~io_size:(64 * Units.kib) ~count:3000)
      in
      Text_table.add_row t [ name; kops create; kops f4; kops f64 ])
    (filesystems ());
  Text_table.print t;
  print_newline ()

let apps_panel () =
  let t =
    Text_table.create ~header:[ "FS"; "fileserver"; "varmail"; "webserver" ]
  in
  List.iter
    (fun (name, make) ->
      let fsrv = Filebench.ops_per_sec (Filebench.fileserver (make ()) ~ops:5000 ~seed:3) in
      let mail = Filebench.ops_per_sec (Filebench.varmail (make ()) ~ops:5000 ~seed:4) in
      let web = Filebench.ops_per_sec (Filebench.webserver (make ()) ~ops:5000 ~seed:5) in
      Text_table.add_row t [ name; kops fsrv; kops mail; kops web ])
    (filesystems ());
  Text_table.print t;
  print_newline ()

let run () =
  print_endline "Figure 3: FileBench microbenchmarks (Aurora vs ZFS vs FFS)";
  print_newline ();
  print_endline "(a) 64 KiB writes (paper: Aurora ~7 GiB/s seq, ZFS trails)";
  write_panel ~io_size:(64 * Units.kib) ~total:(256 * Units.mib);
  print_endline "(b) 4 KiB writes (paper: FFS leads, ZFS collapses on random)";
  write_panel ~io_size:(4 * Units.kib) ~total:(64 * Units.mib);
  print_endline
    "(c) file system operations (paper: Aurora slow createfiles, no-op fsync wins)";
  ops_panel ();
  print_endline "(d) simulated applications (paper: Aurora wins varmail via fsync)";
  apps_panel ()
