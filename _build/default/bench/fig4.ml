(* Figure 4: Memcached at max throughput over varying checkpoint periods
   (closed-loop mutilate clients; the baseline row has no persistence). *)

module Memcached_bench = Aurora_apps.Memcached_bench
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let periods_ms = [ 5; 10; 20; 40; 60; 80; 100 ]

let run_point period_ns =
  Memcached_bench.run
    {
      Memcached_bench.period_ns;
      load = Memcached_bench.Closed_loop 288;
      duration_ns = 300_000_000;
      nkeys = 500_000;
      seed = 21;
      ext_sync = false;
    }

let run () =
  print_endline "Figure 4: Memcached at max throughput vs checkpoint period";
  print_endline
    "(paper: baseline ~1M ops/s; ~45% down at 10 ms, recovering with period)";
  print_newline ();
  let t =
    Text_table.create
      ~header:
        [ "Period"; "Throughput"; "Avg latency"; "95th latency"; "Stops (avg)" ]
  in
  let row label o =
    Text_table.add_row t
      [
        label;
        Printf.sprintf "%.0f kops/s" (o.Memcached_bench.throughput_ops /. 1e3);
        Units.ns_to_string (int_of_float o.Memcached_bench.avg_latency_ns);
        Units.ns_to_string (int_of_float o.Memcached_bench.p95_latency_ns);
        (if o.Memcached_bench.checkpoints = 0 then "-"
         else Units.ns_to_string (int_of_float o.Memcached_bench.avg_stop_ns));
      ]
  in
  row "baseline" (run_point None);
  List.iter
    (fun ms -> row (Printf.sprintf "%d ms" ms) (run_point (Some (ms * Units.ms))))
    periods_ms;
  Text_table.print t;
  print_newline ()
