(* Ablations of the design choices DESIGN.md calls out:
   - collapse direction (Aurora's reverse vs stock FreeBSD),
   - system shadowing vs per-process fork-style COW,
   - vnode references by inode number vs path lookup,
   - shadow chain length bound. *)

module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Page = Aurora_vm.Page
module Vm_object = Aurora_vm.Vm_object
module Vm_space = Aurora_vm.Vm_space
module Vm_map = Aurora_vm.Vm_map
module Syscall = Aurora_kern.Syscall
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

(* Collapse direction: a checkpoint-period shadow holds few pages above a
   large parent; measure both merge directions. *)
let collapse_direction () =
  print_endline "Ablation: collapse direction (shadow pages -> parent vs stock)";
  let t =
    Text_table.create
      ~header:[ "Parent pages"; "Shadow pages"; "Stock FreeBSD"; "Aurora reverse" ]
  in
  List.iter
    (fun (parent_pages, shadow_pages) ->
      let build () =
        let clock = Clock.create () in
        let base = Vm_object.create Vm_object.Anonymous in
        for i = 0 to parent_pages - 1 do
          Vm_object.insert_page base i (Page.alloc ())
        done;
        let shadow = Vm_object.shadow ~clock base in
        for i = 0 to shadow_pages - 1 do
          Vm_object.insert_page shadow i (Page.alloc ())
        done;
        (clock, shadow)
      in
      let time direction =
        let clock, shadow = build () in
        let t0 = Clock.now clock in
        ignore (Vm_object.collapse ~clock ~direction shadow);
        Clock.now clock - t0
      in
      Text_table.add_row t
        [
          string_of_int parent_pages;
          string_of_int shadow_pages;
          Units.ns_to_string (time Vm_object.Stock_freebsd);
          Units.ns_to_string (time Vm_object.Aurora_reverse);
        ])
    [ (1024, 16); (16384, 64); (131072, 256); (262144, 1024) ];
  Text_table.print t;
  print_newline ()

(* System shadowing vs fork-style COW: fork's mechanism cannot track a
   shared mapping without breaking sharing, and re-marking per process
   multiplies the stop-time marking work.  Compare the marking cost per
   checkpoint for a group of N processes sharing one region. *)
let shadowing_vs_fork () =
  print_endline
    "Ablation: system shadowing vs per-process fork-style COW (shared region)";
  let t =
    Text_table.create
      ~header:
        [ "Processes"; "Dirty pages"; "System shadowing"; "Per-process COW" ]
  in
  List.iter
    (fun nprocs ->
      let pages = 8192 in
      let sys = Sls.boot () in
      let machine = sys.Sls.machine in
      let first = Syscall.spawn machine ~name:"w0" in
      let fd = Syscall.shm_open machine first ~name:"/shared" ~npages:pages in
      let e = Syscall.mmap_shm first ~fd in
      let procs =
        first
        :: List.init (nprocs - 1) (fun i ->
               let p = Syscall.spawn machine ~name:(Printf.sprintf "w%d" (i + 1)) in
               let fd = Syscall.shm_open machine p ~name:"/shared" ~npages:pages in
               ignore (Syscall.mmap_shm p ~fd);
               p)
      in
      Vm_space.touch_write first.Aurora_kern.Process.space
        ~addr:(Vm_space.addr_of_entry e)
        ~len:(pages * Page.logical_size);
      let group = Sls.attach sys procs in
      ignore (Group.checkpoint ~wait_durable:true group);
      Vm_space.touch_write first.Aurora_kern.Process.space
        ~addr:(Vm_space.addr_of_entry e)
        ~len:(pages * Page.logical_size);
      let stats = Group.checkpoint ~wait_durable:true group in
      (* One shadow serves every process under system shadowing; fork-style
         COW must mark the region once per process — and still cannot keep
         the region shared afterwards. *)
      let fork_style = stats.Group.mem_mark_ns * nprocs in
      Text_table.add_row t
        [
          string_of_int nprocs;
          string_of_int pages;
          Units.ns_to_string stats.Group.mem_mark_ns;
          Units.ns_to_string fork_style ^ " (+ breaks sharing)";
        ])
    [ 1; 2; 4; 8 ];
  Text_table.print t;
  print_newline ()

(* Vnode by inode vs path: the checkpoint-time saving of skipping
   namei/name-cache lookups (section 5.2). *)
let vnode_reference () =
  print_endline "Ablation: vnode checkpoint reference, inode number vs path lookup";
  let t =
    Text_table.create ~header:[ "Open files"; "By inode (Aurora)"; "By path (namei)" ]
  in
  List.iter
    (fun nfiles ->
      let sys = Sls.boot () in
      let p = Syscall.spawn sys.Sls.machine ~name:"files" in
      for i = 1 to nfiles do
        ignore
          (Syscall.open_file sys.Sls.machine p
             ~path:(Printf.sprintf "/f%d" i)
             ~create:true)
      done;
      let group = Sls.attach sys [ p ] in
      let stats = Group.checkpoint ~wait_durable:true group in
      let by_inode = stats.Group.os_serialize_ns in
      let by_path = by_inode + (nfiles * Cost.vnode_path_lookup) in
      Text_table.add_row t
        [
          string_of_int nfiles;
          Units.ns_to_string by_inode;
          Units.ns_to_string by_path;
        ])
    [ 16; 128; 1024 ];
  Text_table.print t;
  print_newline ()

(* Chain length: the fault-path cost as shadow chains grow, motivating
   the <= 2 bound enforced by eager collapsing. *)
let chain_length () =
  print_endline "Ablation: page-fault cost vs shadow chain length";
  let t = Text_table.create ~header:[ "Chain length"; "Read fault (deep page)" ] in
  List.iter
    (fun depth ->
      let clock = Clock.create () in
      let space = Vm_space.create ~clock in
      let e = Vm_space.map_anonymous space ~npages:1 ~prot:Vm_map.prot_rw in
      let addr = Vm_space.addr_of_entry e in
      (* The page lives at the bottom of the chain. *)
      Vm_space.write_byte space ~addr 'x';
      for _ = 2 to depth do
        let old_obj = e.Vm_map.obj in
        let shadow = Vm_object.shadow ~clock old_obj in
        ignore (Vm_space.replace_object space ~old_obj ~new_obj:shadow)
      done;
      Aurora_vm.Pmap.clear (Vm_space.pmap space);
      let t0 = Clock.now clock in
      ignore (Vm_space.read_byte space ~addr);
      Text_table.add_row t
        [ string_of_int depth; Units.ns_to_string (Clock.now clock - t0) ])
    [ 1; 2; 4; 8; 16 ];
  Text_table.print t;
  print_newline ()

(* Write amplification of the COW store: device bytes per checkpoint
   versus the logical dirty set — incremental checkpointing's reason to
   exist (sections 2 and 7). *)
let write_amplification () =
  print_endline "Ablation: store write amplification per checkpoint";
  let t =
    Text_table.create
      ~header:[ "Dirty pages"; "Logical dirty"; "Device bytes"; "Amplification" ]
  in
  List.iter
    (fun dirty_pages ->
      let sys = Sls.boot () in
      let p = Syscall.spawn sys.Sls.machine ~name:"app" in
      let e = Syscall.mmap_anon p ~npages:65536 (* 256 MiB mapped *) in
      let addr = Vm_space.addr_of_entry e in
      Vm_space.touch_write p.Aurora_kern.Process.space ~addr
        ~len:(65536 * Page.logical_size);
      let group = Sls.attach sys [ p ] in
      ignore (Group.checkpoint ~wait_durable:true group);
      Vm_space.touch_write p.Aurora_kern.Process.space ~addr
        ~len:(dirty_pages * Page.logical_size);
      Aurora_block.Striped.settle sys.Sls.device
        ~clock:sys.Sls.machine.Aurora_kern.Machine.clock;
      Aurora_block.Striped.reset_stats sys.Sls.device;
      ignore (Group.checkpoint ~wait_durable:true group);
      Aurora_block.Striped.settle sys.Sls.device
        ~clock:sys.Sls.machine.Aurora_kern.Machine.clock;
      let device_bytes = Aurora_block.Striped.bytes_written sys.Sls.device in
      let logical = dirty_pages * Page.logical_size in
      Text_table.add_row t
        [
          string_of_int dirty_pages;
          Units.bytes_to_string logical;
          Units.bytes_to_string device_bytes;
          Printf.sprintf "%.2fx" (float_of_int device_bytes /. float_of_int logical);
        ])
    [ 16; 256; 4096; 65536 ];
  Text_table.print t;
  print_newline ()

let run () =
  collapse_direction ();
  shadowing_vs_fork ();
  vnode_reference ();
  chain_length ();
  write_amplification ()
