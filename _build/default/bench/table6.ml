(* Table 6: checkpoint stop times and restore times for popular
   applications (firefox, mosh, pillow, tomcat, vim profiles). *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore
module Profiles = Aurora_apps.Profiles
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

(* Fraction of the resident set an application touches immediately when it
   resumes (drives the lazy-restore row): a browser repaints about half
   its heap; a JVM or a Python batch job wakes up touching very little. *)
let resume_fraction profile =
  match profile.Profiles.app_name with
  | "firefox" -> 0.45
  | "mosh" -> 0.40
  | "pillow" -> 0.02
  | "tomcat" -> 0.08
  | "vim" -> 0.50
  | _ -> 0.3

type row = {
  name : string;
  size_bytes : int;
  mem_ckpt : int;
  full_ckpt : int;
  incr_ckpt : int;
  mem_restore : int;
  full_restore : int;
  lazy_restore : int;
}

let measure profile =
  (* Each checkpoint variant runs against a freshly warmed application, so
     every one pays the first-epoch COW marking of the full resident set
     (the paper measures each mode independently). *)
  let mem =
    let sys = Sls.boot () in
    let group = Sls.attach sys (Profiles.build sys profile) in
    (Group.checkpoint_mem_only group).Group.stop_ns
  in
  let sys = Sls.boot () in
  let procs = Profiles.build sys profile in
  let group = Sls.attach sys procs in
  (* Full: first persisted checkpoint (everything dirty). *)
  let full = Group.checkpoint ~wait_durable:true group in
  (* Incremental: the applications are mostly idle; dirty a few pages. *)
  List.iter
    (fun p ->
      match Aurora_vm.Vm_map.entries (Vm_space.map p.Process.space) with
      | e :: _ ->
          Vm_space.touch_write p.Process.space
            ~addr:(Vm_space.addr_of_entry e)
            ~len:(4 * Page.logical_size)
      | [] -> ())
    procs;
  let incr = Group.checkpoint ~wait_durable:true group in
  let size_bytes =
    List.fold_left
      (fun acc p -> acc + (Vm_space.resident_pages p.Process.space * Page.logical_size))
      0 procs
  in
  (* Mem restore: the checkpoint metadata is still cached in the live
     store; only object recreation is paid. *)
  let m_mem = Machine.create () in
  let mem_restore =
    (Restore.restore ~machine:m_mem ~store:sys.Sls.store ~lazy_pages:true ())
      .Restore.restore_ns
  in
  (* Full restore after a real crash: everything comes off the device. *)
  let crash_now = Clock.now sys.Sls.machine.Machine.clock in
  Striped.crash sys.Sls.device ~now:crash_now;
  let m_full = Machine.create () in
  Clock.advance_to m_full.Machine.clock crash_now;
  let store2 = Store.recover ~dev:sys.Sls.device ~clock:m_full.Machine.clock in
  let full_restore =
    (Restore.restore ~machine:m_full ~store:store2 ()).Restore.restore_ns
  in
  (* Lazy restore: OS state now; the resume working set pages in on
     demand right after. *)
  let m_lazy = Machine.create () in
  Clock.advance_to m_lazy.Machine.clock crash_now;
  let store3 = Store.recover ~dev:sys.Sls.device ~clock:m_lazy.Machine.clock in
  let result = Restore.restore ~machine:m_lazy ~store:store3 ~lazy_pages:true () in
  (* The application resumes after [restore_ns] and then demand-pages its
     resume working set; the rest of the background page-in is off the
     critical path. *)
  let touched =
    int_of_float (resume_fraction profile *. float_of_int size_bytes)
  in
  let t1 = Clock.now m_lazy.Machine.clock in
  Striped.charge_read sys.Sls.device ~clock:m_lazy.Machine.clock ~bytes:touched;
  let lazy_restore =
    result.Restore.restore_ns + (Clock.now m_lazy.Machine.clock - t1)
  in
  {
    name = profile.Profiles.app_name;
    size_bytes;
    mem_ckpt = mem;
    full_ckpt = full.Group.stop_ns;
    incr_ckpt = incr.Group.stop_ns;
    mem_restore;
    full_restore;
    lazy_restore;
  }

let run () =
  print_endline "Table 6: application checkpoint stop times and restore times";
  print_endline
    "(paper, firefox: 198MiB, ckpt mem/full/incr 1.4/1.8/1.9 ms, restore";
  print_endline "        mem/full/lazy 0.9/12.4/6.3 ms; tomcat full ckpt 3.2 ms)";
  print_newline ();
  let rows = List.map measure Profiles.all in
  let t =
    Text_table.create
      ~header:[ "Type"; "firefox"; "mosh"; "pillow"; "tomcat"; "vim" ]
  in
  let cell f = List.map (fun r -> f r) rows in
  Text_table.add_row t ("Size" :: cell (fun r -> Units.bytes_to_string r.size_bytes));
  Text_table.add_row t
    ("Ckpt Mem" :: cell (fun r -> Units.ns_to_string r.mem_ckpt));
  Text_table.add_row t
    ("Ckpt Full" :: cell (fun r -> Units.ns_to_string r.full_ckpt));
  Text_table.add_row t
    ("Ckpt Incr" :: cell (fun r -> Units.ns_to_string r.incr_ckpt));
  Text_table.add_separator t;
  Text_table.add_row t
    ("Restore Mem" :: cell (fun r -> Units.ns_to_string r.mem_restore));
  Text_table.add_row t
    ("Restore Full" :: cell (fun r -> Units.ns_to_string r.full_restore));
  Text_table.add_row t
    ("Restore Lazy" :: cell (fun r -> Units.ns_to_string r.lazy_restore));
  Text_table.print t;
  print_newline ()
