(* Table 5: checkpoint stop times for userspace data objects of 4 KiB to
   1 GiB under the three Aurora modes: incremental (full transparent
   checkpoint), atomic (sls_memckpt), and journaled (sls_journal). *)

module Clock = Aurora_sim.Clock
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Api = Aurora_core.Api
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let sizes =
  [
    4 * Units.kib;
    16 * Units.kib;
    64 * Units.kib;
    256 * Units.kib;
    Units.mib;
    4 * Units.mib;
    16 * Units.mib;
    64 * Units.mib;
    256 * Units.mib;
    Units.gib;
  ]

let incremental size =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"micro" in
  let e = Syscall.mmap_anon p ~npages:(Units.pages_of_bytes size) in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Aurora_kern.Process.space ~addr ~len:size;
  let group = Sls.attach sys [ p ] in
  (* Absorb the initial full checkpoint; the row measures the steady
     state with [size] bytes dirty. *)
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.touch_write p.Aurora_kern.Process.space ~addr ~len:size;
  let stats = Group.checkpoint ~wait_durable:true group in
  stats.Group.stop_ns

let atomic size =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"micro" in
  let e = Syscall.mmap_anon p ~npages:(Units.pages_of_bytes size) in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.touch_write p.Aurora_kern.Process.space ~addr ~len:size;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  Vm_space.touch_write p.Aurora_kern.Process.space ~addr ~len:size;
  let stats = Api.sls_memckpt group e in
  stats.Group.stop_ns

let journaled size =
  let sys = Sls.boot () in
  let p = Syscall.spawn sys.Sls.machine ~name:"micro" in
  let group = Sls.attach sys [ p ] in
  let j = Api.sls_journal_open group ~size:(size + (16 * Units.mib)) in
  let clk = sys.Sls.machine.Aurora_kern.Machine.clock in
  let t0 = Clock.now clk in
  (* Large updates append in 1 MiB chunks (the journal is synchronous
     either way); small ones in one record. *)
  let chunk = Units.mib in
  let rec append remaining =
    if remaining > 0 then begin
      let n = min chunk remaining in
      Api.sls_journal group j (String.make n 'j');
      append (remaining - n)
    end
  in
  append size;
  Clock.now clk - t0

let run () =
  print_endline "Table 5: checkpoint stop times for userspace data objects";
  print_endline
    "(paper: 4KiB 185/80/28 us ... 64MiB 600/492us/25.9ms ... 1GiB 6.1/6.3/417 ms)";
  print_newline ();
  let t =
    Text_table.create
      ~header:[ "Object Size"; "Incremental"; "Atomic"; "Journaled" ]
  in
  List.iter
    (fun size ->
      Text_table.add_row t
        [
          Units.bytes_to_string size;
          Units.ns_to_string (incremental size);
          Units.ns_to_string (atomic size);
          Units.ns_to_string (journaled size);
        ])
    sizes;
  Text_table.print t;
  print_newline ()
