(* Table 4: checkpoint and restore times for POSIX objects.

   Each row is measured differentially: a process with N instances of the
   object versus the same process without them, divided by N.  The
   checkpoint side measures the OS-serialization window; the restore side
   measures the restore of the same checkpoint. *)

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Syscall = Aurora_kern.Syscall
module Kqueue = Aurora_kern.Kqueue
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

(* Measure (checkpoint_ns, restore_ns) for a process population created by
   [setup], minus an empty-process baseline, per object. *)
let measure ~count setup =
  let run build =
    let sys = Sls.boot () in
    let p = Syscall.spawn sys.Sls.machine ~name:"micro" in
    build sys p;
    let group = Sls.attach sys [ p ] in
    let stats = Group.checkpoint ~wait_durable:true group in
    let machine2 = Machine.create () in
    let result =
      Restore.restore ~machine:machine2 ~store:sys.Sls.store ~lazy_pages:true ()
    in
    (stats.Group.os_serialize_ns, result.Restore.restore_ns)
  in
  let with_objs = run (fun sys p -> setup sys p) in
  let baseline = run (fun _ _ -> ()) in
  ( (fst with_objs - fst baseline) / count,
    (snd with_objs - snd baseline) / count )

let run () =
  print_endline "Table 4: checkpoint and restore times for POSIX objects";
  print_endline
    "(paper: kqueue 35.2/2.7, pipes 1.7/2.6, pty 3.1/30.2, shm-posix 4.5/3.8,";
  print_endline "        shm-sysv 14.9/2.8, sockets 1.8/3.6, vnodes 1.7/2.0 us)";
  print_newline ();
  let rows =
    [
      ( "Kqueue w/1024 events",
        measure ~count:1 (fun sys p ->
            let kq = Syscall.kqueue sys.Sls.machine p in
            for i = 0 to 1023 do
              Syscall.kevent_register p ~fd:kq
                { Kqueue.ident = i; filter = Kqueue.Ev_read; flags = 1; udata = i }
            done) );
      ( "Pipes",
        measure ~count:16 (fun sys p ->
            for _ = 1 to 16 do
              ignore (Syscall.pipe sys.Sls.machine p)
            done) );
      ( "Pseudoterminals",
        measure ~count:16 (fun sys p ->
            for _ = 1 to 16 do
              ignore (Syscall.posix_openpt sys.Sls.machine p)
            done) );
      ( "Shared Memory (POSIX)",
        measure ~count:16 (fun sys p ->
            for i = 1 to 16 do
              ignore
                (Syscall.shm_open sys.Sls.machine p
                   ~name:(Printf.sprintf "/seg%d" i)
                   ~npages:1)
            done) );
      ( "Shared Memory (SysV)",
        measure ~count:16 (fun sys p ->
            for i = 1 to 16 do
              let shm = Syscall.shmget sys.Sls.machine ~key:i ~npages:1 in
              ignore (Syscall.shmat p shm)
            done) );
      ( "Sockets",
        measure ~count:16 (fun sys p ->
            for _ = 1 to 16 do
              ignore
                (Syscall.socket sys.Sls.machine p Aurora_kern.Socket.Inet
                   Aurora_kern.Socket.Udp)
            done) );
      ( "Vnodes",
        measure ~count:16 (fun sys p ->
            for i = 1 to 16 do
              ignore
                (Syscall.open_file sys.Sls.machine p
                   ~path:(Printf.sprintf "/f%d" i)
                   ~create:true)
            done) );
    ]
  in
  let t = Text_table.create ~header:[ "POSIX Object"; "Checkpoint"; "Restore" ] in
  List.iter
    (fun (name, (ckpt, restore)) ->
      Text_table.add_row t
        [ name; Units.ns_to_string (max 0 ckpt); Units.ns_to_string (max 0 restore) ])
    rows;
  Text_table.print t;
  print_newline ()
