(* External synchrony cost (DESIGN.md section 7): the paper's prototype
   ran its benchmarks with external synchrony disabled (paper section 8);
   this bench shows what enabling it costs.  SET responses are withheld
   until the covering checkpoint is durable, so their latency absorbs on
   average half a checkpoint period; GET responses — external synchrony
   disabled per-descriptor via sls_fdctl — are unaffected. *)

module Memcached_bench = Aurora_apps.Memcached_bench
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let run_point ~ext_sync period_ms =
  Memcached_bench.run
    {
      Memcached_bench.period_ns = Some (period_ms * Units.ms);
      load = Memcached_bench.Open_poisson 120_000.0;
      duration_ns = 200_000_000;
      nkeys = 200_000;
      seed = 29;
      ext_sync;
    }

let run () =
  print_endline "External synchrony: SET-response latency vs checkpoint period";
  print_endline
    "(SETs wait for durability ~ half a period on average; GETs are exempt";
  print_endline " via sls_fdctl — the paper's read-only-connection optimization)";
  print_newline ();
  let t =
    Text_table.create
      ~header:
        [ "Period"; "SET avg (off)"; "SET avg (on)"; "GET avg (off)"; "GET avg (on)" ]
  in
  List.iter
    (fun ms ->
      let off = run_point ~ext_sync:false ms in
      let on = run_point ~ext_sync:true ms in
      Text_table.add_row t
        [
          Printf.sprintf "%d ms" ms;
          Units.ns_to_string (int_of_float off.Memcached_bench.avg_set_latency_ns);
          Units.ns_to_string (int_of_float on.Memcached_bench.avg_set_latency_ns);
          Units.ns_to_string (int_of_float off.Memcached_bench.avg_get_latency_ns);
          Units.ns_to_string (int_of_float on.Memcached_bench.avg_get_latency_ns);
        ])
    [ 5; 10; 20; 50 ];
  Text_table.print t;
  print_newline ()
