(* Figure 6: RocksDB configurations under the Facebook Prefix_dist
   workload — throughput plus 99th and 99.9th percentile write latency,
   grouped by whether writes are persisted before acknowledgement. *)

module Rocksdb_bench = Aurora_apps.Rocksdb_bench
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let configs =
  [
    Rocksdb_bench.Cfg_none;
    Rocksdb_bench.Cfg_aurora_100hz;
    Rocksdb_bench.Cfg_wal;
    Rocksdb_bench.Cfg_aurora_wal;
  ]

let run () =
  print_endline "Figure 6: RocksDB configurations, Prefix_dist workload";
  print_endline
    "(paper: transparent -83% vs ephemeral and ~half of WAL; Aurora+WAL +75%";
  print_endline
    "        over RocksDB+WAL with better 99th but worse 99.9th latency)";
  print_newline ();
  let t =
    Text_table.create
      ~header:[ "Configuration"; "Group"; "Throughput"; "p99 write"; "p99.9 write" ]
  in
  List.iter
    (fun config ->
      let o = Rocksdb_bench.run config ~ops:250_000 ~nkeys:200_000 ~seed:31 in
      Text_table.add_row t
        [
          Rocksdb_bench.config_label config;
          (if Rocksdb_bench.config_is_sync config then "Sync" else "No Sync");
          Printf.sprintf "%.0f kops/s" (o.Rocksdb_bench.throughput_ops /. 1e3);
          Units.ns_to_string (int_of_float o.Rocksdb_bench.p99_write_ns);
          Units.ns_to_string (int_of_float o.Rocksdb_bench.p999_write_ns);
        ])
    configs;
  Text_table.print t;
  print_newline ()
