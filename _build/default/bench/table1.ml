(* Table 1: a breakdown of CRIU's checkpointing overheads for a 500 MB
   Redis process. *)

module Machine = Aurora_kern.Machine
module Vfs = Aurora_kern.Vfs
module Criu = Aurora_criu.Criu
module Redis_sim = Aurora_apps.Redis_sim
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let run () =
  print_endline "Table 1: CRIU checkpointing overheads, 500 MB Redis";
  print_endline "(paper: OS state 49 ms, memory 413 ms, stop 462 ms, IO 350 ms)";
  print_newline ();
  let machine = Machine.create () in
  Machine.mount machine (Vfs.ram_ops ~clock:machine.Machine.clock);
  let redis = Redis_sim.create ~machine ~resident_mib:500 () in
  let b, _image = Criu.checkpoint machine [ Redis_sim.proc redis ] in
  let t = Text_table.create ~header:[ "Type"; "CRIU" ] in
  Text_table.add_row t [ "OS State Copy"; Units.ns_to_string b.Criu.os_state_ns ];
  Text_table.add_row t [ "Memory Copy"; Units.ns_to_string b.Criu.memory_copy_ns ];
  Text_table.add_row t [ "Total Stop Time"; Units.ns_to_string b.Criu.total_stop_ns ];
  Text_table.add_row t [ "IO Write"; Units.ns_to_string b.Criu.io_write_ns ];
  Text_table.print t;
  print_newline ()
