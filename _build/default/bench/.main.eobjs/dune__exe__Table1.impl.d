bench/table1.ml: Aurora_apps Aurora_criu Aurora_kern Aurora_util
