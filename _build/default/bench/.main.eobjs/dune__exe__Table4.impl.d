bench/table4.ml: Aurora_core Aurora_kern Aurora_sim Aurora_util List Printf
