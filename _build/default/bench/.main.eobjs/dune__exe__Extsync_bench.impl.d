bench/extsync_bench.ml: Aurora_apps Aurora_util List Printf
