bench/table6.ml: Aurora_apps Aurora_block Aurora_core Aurora_kern Aurora_objstore Aurora_sim Aurora_util Aurora_vm List
