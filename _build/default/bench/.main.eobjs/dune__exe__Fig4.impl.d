bench/fig4.ml: Aurora_apps Aurora_util List Printf
