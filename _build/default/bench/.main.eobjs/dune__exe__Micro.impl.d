bench/micro.ml: Analyze Aurora_block Aurora_objstore Aurora_sim Aurora_vm Bechamel Benchmark Bytes Fun Hashtbl Instance List Measure Printf Staged Test Time Toolkit
