bench/main.mli:
