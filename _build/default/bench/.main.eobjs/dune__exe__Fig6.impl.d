bench/fig6.ml: Aurora_apps Aurora_util List Printf
