bench/fig5.ml: Aurora_apps Aurora_util List Printf
