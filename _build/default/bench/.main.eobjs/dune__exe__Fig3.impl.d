bench/fig3.ml: Aurora_fs Aurora_util Aurora_workloads List Printf
