bench/main.ml: Ablate Array Extsync_bench Fig3 Fig4 Fig5 Fig6 List Micro Printf Sys Table1 Table4 Table5 Table6 Table7
