lib/block/device.ml: Aurora_sim Bytes Hashtbl List
