lib/block/striped.mli: Aurora_sim
