lib/block/striped.ml: Array Aurora_sim Bytes Device Fun List Printf String
