lib/block/device.mli: Aurora_sim
