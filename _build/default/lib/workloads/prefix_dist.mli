(** The RocksDB Prefix_dist workload (Cao et al., FAST'20): keys are
    grouped under prefixes whose popularity is heavily skewed; used for
    the Figure 6 RocksDB comparison. *)

type op = Db_get of int | Db_put of int * int  (** Db_put (key, value_bytes) *)

type t

val create : ?nkeys:int -> ?put_ratio:float -> seed:int -> unit -> t
(** Defaults: 1M keys, 0.5 put ratio (the sync-write comparison needs a
    write-heavy mix). *)

val next : t -> op
val nkeys : t -> int
val mean_value_bytes : int
