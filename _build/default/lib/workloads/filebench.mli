(** FileBench personalities (paper section 9.1, Figure 3).

    Each personality drives an identical operation stream into any
    {!Aurora_fs.Bench_fs.t} implementation and reports operations, bytes
    and elapsed virtual time.  The micro personalities reproduce Figures
    3a–3c; fileserver, varmail and webserver reproduce Figure 3d. *)

type result = {
  label : string;
  ops : int;
  bytes : int;
  elapsed_ns : int;
}

val throughput_gib_s : result -> float
val ops_per_sec : result -> float

(** {1 Micro personalities (Figures 3a–3c)} *)

val random_write :
  Aurora_fs.Bench_fs.t -> io_size:int -> total:int -> seed:int -> result
(** Random-offset writes of [io_size] into a preallocated file until
    [total] bytes are written. *)

val sequential_write : Aurora_fs.Bench_fs.t -> io_size:int -> total:int -> result

val create_files : Aurora_fs.Bench_fs.t -> count:int -> mean_size:int -> seed:int -> result
(** Create many small files, writing [mean_size] bytes into each. *)

val write_fsync : Aurora_fs.Bench_fs.t -> io_size:int -> count:int -> result
(** Each operation writes [io_size] bytes and fsyncs. *)

(** {1 Application personalities (Figure 3d)} *)

val fileserver : Aurora_fs.Bench_fs.t -> ops:int -> seed:int -> result
(** Whole-file writes, appends, reads and deletes over a working set of
    files (FileBench's fileserver profile). *)

val varmail : Aurora_fs.Bench_fs.t -> ops:int -> seed:int -> result
(** Mail-server pattern: create/append/fsync/read/delete — fsync-bound on
    conventional file systems. *)

val webserver : Aurora_fs.Bench_fs.t -> ops:int -> seed:int -> result
(** Read-mostly with a small append-only log. *)
