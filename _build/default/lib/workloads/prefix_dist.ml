module Rng = Aurora_util.Rng

type op = Db_get of int | Db_put of int * int

(* Prefix_dist: popularity is skewed per prefix group; keys inside a
   group are uniform.  Modeled as a zipf over prefixes and a uniform draw
   within the chosen prefix. *)
type t = {
  prefixes : Zipf.t;
  keys_per_prefix : int;
  rng : Rng.t;
  put_ratio : float;
}

let mean_value_bytes = 400

let create ?(nkeys = 1_000_000) ?(put_ratio = 0.5) ~seed () =
  let rng = Rng.create seed in
  let nprefixes = max 1 (nkeys / 1000) in
  {
    prefixes = Zipf.create ~n:nprefixes ~theta:0.92 (Rng.split rng);
    keys_per_prefix = nkeys / max 1 (nkeys / 1000);
    rng;
    put_ratio;
  }

let next t =
  let prefix = Zipf.sample t.prefixes in
  let key = (prefix * t.keys_per_prefix) + Rng.int t.rng t.keys_per_prefix in
  if Rng.float t.rng 1.0 < t.put_ratio then
    Db_put (key, Rng.int_in t.rng 100 (2 * mean_value_bytes))
  else Db_get key

let nkeys t = Zipf.n t.prefixes * t.keys_per_prefix
