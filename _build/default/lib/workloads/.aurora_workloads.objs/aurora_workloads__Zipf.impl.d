lib/workloads/zipf.ml: Array Aurora_util
