lib/workloads/prefix_dist.ml: Aurora_util Zipf
