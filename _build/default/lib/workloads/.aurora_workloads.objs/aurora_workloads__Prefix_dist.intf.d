lib/workloads/prefix_dist.mli:
