lib/workloads/filebench.mli: Aurora_fs
