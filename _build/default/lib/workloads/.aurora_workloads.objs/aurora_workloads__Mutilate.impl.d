lib/workloads/mutilate.ml: Aurora_util Zipf
