lib/workloads/zipf.mli: Aurora_util
