lib/workloads/mutilate.mli:
