lib/workloads/filebench.ml: Aurora_fs Aurora_sim Aurora_util Hashtbl Printf
