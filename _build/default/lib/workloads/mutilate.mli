(** The Mutilate load generator with the Facebook ETC workload
    (Atikoglu et al.), as used for the Memcached experiments (Figures 4
    and 5): zipfian key popularity, small keys, values of a few hundred
    bytes, and a high GET:SET ratio. *)

type op = Get of int | Set of int * int  (** Set (key, value_bytes) *)

type t

val create : ?nkeys:int -> ?get_ratio:float -> ?theta:float -> seed:int -> unit -> t
(** Defaults: 1M keys, 0.9 GET ratio (ETC's read-dominance), theta 0.99. *)

val next : t -> op
val nkeys : t -> int
val mean_value_bytes : int
