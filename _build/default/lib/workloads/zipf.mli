(** Zipfian key popularity, the distribution behind both the Facebook
    Memcached workload (Atikoglu et al., SIGMETRICS'12) and the RocksDB
    Prefix_dist workload (Cao et al., FAST'20).

    The sampler precomputes the cumulative distribution and draws by
    binary search: exact, and fast enough for millions of samples. *)

type t

val create : n:int -> theta:float -> Aurora_util.Rng.t -> t
(** [n] keys with skew exponent [theta] (typical workloads use 0.9–1.0). *)

val sample : t -> int
(** A key index in [0, n), rank 0 being the most popular. *)

val n : t -> int
