module Clock = Aurora_sim.Clock
module Rng = Aurora_util.Rng
module Bench_fs = Aurora_fs.Bench_fs

type result = { label : string; ops : int; bytes : int; elapsed_ns : int }

let throughput_gib_s r =
  if r.elapsed_ns = 0 then 0.0
  else
    float_of_int r.bytes /. (1024.0 ** 3.0) /. (float_of_int r.elapsed_ns /. 1e9)

let ops_per_sec r =
  if r.elapsed_ns = 0 then 0.0
  else float_of_int r.ops /. (float_of_int r.elapsed_ns /. 1e9)

let measure (fs : Bench_fs.t) label f =
  let t0 = Clock.now fs.Bench_fs.fs_clock in
  let ops, bytes = f () in
  fs.Bench_fs.drain ();
  { label; ops; bytes; elapsed_ns = Clock.now fs.Bench_fs.fs_clock - t0 }

let working_file = "/bench/data"
let file_size = 256 * 1024 * 1024

let prepare_file (fs : Bench_fs.t) =
  fs.Bench_fs.create_file working_file;
  (* Preallocate so random writes hit existing blocks (no append path). *)
  fs.Bench_fs.write_file ~path:working_file ~off:0 ~len:file_size;
  fs.Bench_fs.drain ()

let random_write fs ~io_size ~total ~seed =
  prepare_file fs;
  let rng = Rng.create seed in
  let slots = file_size / io_size in
  measure fs "random write" (fun () ->
      let n = total / io_size in
      for _ = 1 to n do
        let off = Rng.int rng slots * io_size in
        fs.Bench_fs.write_file ~path:working_file ~off ~len:io_size
      done;
      (n, n * io_size))

let sequential_write fs ~io_size ~total =
  prepare_file fs;
  measure fs "sequential write" (fun () ->
      let n = total / io_size in
      for i = 0 to n - 1 do
        let off = i * io_size mod file_size in
        fs.Bench_fs.write_file ~path:working_file ~off ~len:io_size
      done;
      (n, n * io_size))

let create_files fs ~count ~mean_size ~seed =
  let rng = Rng.create seed in
  measure fs "createfiles" (fun () ->
      let bytes = ref 0 in
      for i = 0 to count - 1 do
        let path = Printf.sprintf "/create/f%06d" i in
        fs.Bench_fs.create_file path;
        let size = max 512 (Rng.int_in rng (mean_size / 2) (3 * mean_size / 2)) in
        fs.Bench_fs.write_file ~path ~off:0 ~len:size;
        bytes := !bytes + size
      done;
      (count, !bytes))

let write_fsync fs ~io_size ~count =
  let path = "/fsync/log" in
  fs.Bench_fs.create_file path;
  fs.Bench_fs.drain ();
  measure fs "write+fsync" (fun () ->
      for i = 0 to count - 1 do
        fs.Bench_fs.write_file ~path ~off:(i * io_size) ~len:io_size;
        fs.Bench_fs.fsync_file path
      done;
      (count, count * io_size))

(* Application personalities.  Sizes follow the classic FileBench
   profiles: fileserver 128 KiB files with whole-file reads/writes;
   varmail 16 KiB messages with fsync after each append; webserver reads
   with a 16 KiB mean and an 8 KiB log append every 10th op. *)

let fileserver fs ~ops ~seed =
  let rng = Rng.create seed in
  let nfiles = 500 in
  let fsize = 128 * 1024 in
  for i = 0 to nfiles - 1 do
    let path = Printf.sprintf "/srv/f%04d" i in
    fs.Bench_fs.create_file path;
    fs.Bench_fs.write_file ~path ~off:0 ~len:fsize
  done;
  fs.Bench_fs.drain ();
  measure fs "fileserver" (fun () ->
      let bytes = ref 0 in
      for _ = 1 to ops do
        let path = Printf.sprintf "/srv/f%04d" (Rng.int rng nfiles) in
        match Rng.int rng 4 with
        | 0 ->
            (* whole-file write *)
            fs.Bench_fs.write_file ~path ~off:0 ~len:fsize;
            bytes := !bytes + fsize
        | 1 ->
            (* append *)
            fs.Bench_fs.write_file ~path ~off:fsize ~len:(16 * 1024);
            bytes := !bytes + (16 * 1024)
        | 2 | _ ->
            (* whole-file read (two read ops for one write-ish op mirrors
               the 1:2 write:read profile) *)
            fs.Bench_fs.read_file ~path ~off:0 ~len:fsize;
            bytes := !bytes + fsize
      done;
      (ops, !bytes))

let varmail fs ~ops ~seed =
  let rng = Rng.create seed in
  let msg = 16 * 1024 in
  let exists = Hashtbl.create 256 in
  let ensure path =
    if not (Hashtbl.mem exists path) then begin
      fs.Bench_fs.create_file path;
      Hashtbl.replace exists path ()
    end
  in
  measure fs "varmail" (fun () ->
      let bytes = ref 0 in
      for i = 0 to ops - 1 do
        let path = Printf.sprintf "/mail/m%06d" (i mod 2000) in
        match Rng.int rng 4 with
        | 0 ->
            ensure path;
            fs.Bench_fs.write_file ~path ~off:0 ~len:msg;
            fs.Bench_fs.fsync_file path;
            bytes := !bytes + msg
        | 1 ->
            ensure path;
            fs.Bench_fs.write_file ~path ~off:msg ~len:msg;
            fs.Bench_fs.fsync_file path;
            bytes := !bytes + msg
        | 2 ->
            ensure path;
            fs.Bench_fs.read_file ~path ~off:0 ~len:msg;
            bytes := !bytes + msg
        | _ ->
            ensure path;
            fs.Bench_fs.delete_file path;
            Hashtbl.remove exists path
      done;
      (ops, !bytes))

let webserver fs ~ops ~seed =
  let rng = Rng.create seed in
  let nfiles = 1000 in
  let fsize = 16 * 1024 in
  for i = 0 to nfiles - 1 do
    let path = Printf.sprintf "/www/p%04d" i in
    fs.Bench_fs.create_file path;
    fs.Bench_fs.write_file ~path ~off:0 ~len:fsize
  done;
  fs.Bench_fs.create_file "/www/access.log";
  fs.Bench_fs.drain ();
  measure fs "webserver" (fun () ->
      let bytes = ref 0 in
      let log_off = ref 0 in
      for i = 1 to ops do
        let path = Printf.sprintf "/www/p%04d" (Rng.int rng nfiles) in
        fs.Bench_fs.read_file ~path ~off:0 ~len:fsize;
        bytes := !bytes + fsize;
        if i mod 10 = 0 then begin
          fs.Bench_fs.write_file ~path:"/www/access.log" ~off:!log_off ~len:8192;
          log_off := !log_off + 8192;
          bytes := !bytes + 8192
        end
      done;
      (ops, !bytes))
