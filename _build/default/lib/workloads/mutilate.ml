module Rng = Aurora_util.Rng

type op = Get of int | Set of int * int

type t = { keys : Zipf.t; rng : Rng.t; get_ratio : float }

let mean_value_bytes = 256

let create ?(nkeys = 1_000_000) ?(get_ratio = 0.9) ?(theta = 0.99) ~seed () =
  let rng = Rng.create seed in
  { keys = Zipf.create ~n:nkeys ~theta (Rng.split rng); rng; get_ratio }

let next t =
  let key = Zipf.sample t.keys in
  if Rng.float t.rng 1.0 < t.get_ratio then Get key
  else Set (key, Rng.int_in t.rng 64 (2 * mean_value_bytes))

let nkeys t = Zipf.n t.keys
