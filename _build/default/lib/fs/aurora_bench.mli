(** FileBench adapter for the Aurora file system / object store.

    Runs the real store write path: dirty pages accumulate per file and a
    store checkpoint commits every [period_ns] of virtual time (default
    10 ms, the paper's configuration for Figure 3).  fsync is a no-op
    under checkpoint consistency. *)

val make : ?period_ns:int -> unit -> Bench_fs.t
