module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped

(* Per-operation CPU on the write path: buffer management and fragment
   bookkeeping; FFS's path is short, which is why it wins at 4 KiB. *)
let per_write_cpu = 250

(* Soft-updates dependency tracking per metadata-touching operation. *)
let softdep_cpu = 2_600

type file = { mutable size : int; mutable dirty_bytes : int }

let make () =
  let clk = Clock.create () in
  let dev = Striped.create () in
  let files : (string, file) Hashtbl.t = Hashtbl.create 256 in
  let file_of path =
    match Hashtbl.find_opt files path with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "ffs_model: no such file %s" path)
  in
  (* Rotate offsets so the allocator's writes stripe across the array. *)
  let next_off = ref 0 in
  let submit_async len =
    ignore (Striped.write ~charge:len dev ~now:(Clock.now clk) ~off:!next_off Bytes.empty);
    next_off := (!next_off + len) mod (64 * 1024 * 1024 * 1024)
  in
  let create_file path =
    (* Inode allocation + directory update, made async by soft updates. *)
    Clock.advance clk (Cost.syscall_overhead + softdep_cpu);
    submit_async 4096;
    if not (Hashtbl.mem files path) then
      Hashtbl.replace files path { size = 0; dirty_bytes = 0 }
  in
  let delete_file path =
    Clock.advance clk (Cost.syscall_overhead + softdep_cpu);
    Hashtbl.remove files path
  in
  let write_file ~path ~off ~len =
    let f = file_of path in
    (* In-place write: data lands where it lives; fragments mean no
       read-modify-write for sub-block sizes, and delayed allocation
       batches the I/O.  The buffered fast path is short — FFS's small
       writes win Figure 3b. *)
    Clock.advance clk (1_100 + per_write_cpu + Cost.copy_time len);
    submit_async len;
    f.dirty_bytes <- f.dirty_bytes + len;
    if off + len > f.size then f.size <- off + len
  in
  let read_file ~path ~off ~len =
    let _f = file_of path in
    ignore off;
    Clock.advance clk (Cost.syscall_overhead + Cost.copy_time len)
  in
  let fsync_file path =
    let f = file_of path in
    (* Synchronously flush this file's dirty data plus one SU+J journal
       record. *)
    let len = max 4096 (min f.dirty_bytes (256 * 1024)) in
    Clock.advance clk (Cost.syscall_overhead + softdep_cpu);
    let c =
      Striped.write ~charge:(len + 4096) dev ~now:(Clock.now clk) ~off:!next_off Bytes.empty
    in
    next_off := !next_off + len + 4096;
    Clock.advance_to clk (c + Cost.nvme_sync_write_latency);
    f.dirty_bytes <- 0
  in
  let drain () = Striped.settle dev ~clock:clk in
  {
    Bench_fs.fs_label = "FFS";
    fs_clock = clk;
    create_file;
    delete_file;
    write_file;
    read_file;
    fsync_file;
    drain;
    device_bytes_written = (fun () -> Striped.bytes_written dev);
  }
