module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped

let record_size = 64 * 1024

(* Per-record CPU on the write path: block pointer updates, dbuf management,
   compression pipeline bookkeeping. *)
let per_record_cpu = 3_800

(* Checksum throughput (fletcher4 over the record), bytes/s. *)
let checksum_bandwidth = 11 * 1024 * 1024 * 1024

(* Metadata write amplification: COW indirect chain + dittoed metadata
   copies, as a fraction of data written. *)
let metadata_amplification = 0.32

(* Extra ZIL overhead beyond the raw sync write (paper 9.1: "ZFS syncs are
   slower than FFS and Aurora because its COW mechanism generates complex
   changes to file system state"). *)
let zil_record_cpu = 9_500

type file = { mutable size : int; cached : (int, unit) Hashtbl.t (* hot records *) }

let make ~checksum () =
  let clk = Clock.create () in
  let dev = Striped.create () in
  let files : (string, file) Hashtbl.t = Hashtbl.create 256 in
  let file_of path =
    match Hashtbl.find_opt files path with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "zfs_model: no such file %s" path)
  in
  let checksum_cost len =
    if checksum then Cost.transfer_time ~bandwidth:checksum_bandwidth len else 0
  in
  (* Rotate offsets so the allocator's writes stripe across the array. *)
  let next_off = ref 0 in
  let submit_async len =
    ignore (Striped.write ~charge:len dev ~now:(Clock.now clk) ~off:!next_off Bytes.empty);
    next_off := (!next_off + len) mod (64 * 1024 * 1024 * 1024)
  in
  let create_file path =
    Clock.advance clk (Cost.syscall_overhead + 6_000 + checksum_cost 4096);
    (* dnode + directory ZAP update, batched into the txg. *)
    submit_async (2 * 4096);
    if not (Hashtbl.mem files path) then
      Hashtbl.replace files path { size = 0; cached = Hashtbl.create 16 }
  in
  let delete_file path =
    Clock.advance clk (Cost.syscall_overhead + 5_000);
    Hashtbl.remove files path
  in
  let write_file ~path ~off ~len =
    let f = file_of path in
    Clock.advance clk (Cost.syscall_overhead + Cost.copy_time len);
    let first = off / record_size and last = (off + len - 1) / record_size in
    for rec_idx = first to last do
      let rec_off = rec_idx * record_size in
      let in_record = min (off + len) (rec_off + record_size) - max off rec_off in
      let partial = in_record < record_size && rec_off + record_size <= max f.size (off + len) in
      (* A partial write to an uncached record is a read-modify-write of
         the full record: the read consumes device bandwidth, and a small
         amortized stall hits the writer (FileBench threads overlap most
         of the read latency). *)
      if partial && not (Hashtbl.mem f.cached rec_idx) then begin
        submit_async record_size;
        Clock.advance clk 2_500
      end;
      Hashtbl.replace f.cached rec_idx ();
      let written = if partial then record_size else in_record in
      Clock.advance clk (per_record_cpu + checksum_cost written);
      submit_async written;
      (* COW indirect chain + ditto blocks. *)
      submit_async (int_of_float (float_of_int written *. metadata_amplification))
    done;
    if off + len > f.size then f.size <- off + len
  in
  let read_file ~path ~off ~len =
    let f = file_of path in
    ignore off;
    ignore f;
    Clock.advance clk (Cost.syscall_overhead + Cost.copy_time len + checksum_cost len)
  in
  let fsync_file path =
    let f = file_of path in
    ignore f;
    (* ZIL: a synchronous log write plus the COW metadata bookkeeping. *)
    Clock.advance clk (Cost.syscall_overhead + zil_record_cpu);
    let c =
      Striped.write ~charge:(3 * 4096) dev ~now:(Clock.now clk) ~off:!next_off Bytes.empty
    in
    next_off := !next_off + (3 * 4096);
    (* The ZIL write plus the transaction-group pressure it creates. *)
    Clock.advance_to clk (c + (2 * Cost.nvme_sync_write_latency))
  in
  let drain () = Striped.settle dev ~clock:clk in
  {
    Bench_fs.fs_label = (if checksum then "ZFS+CSUM" else "ZFS");
    fs_clock = clk;
    create_file;
    delete_file;
    write_file;
    read_file;
    fsync_file;
    drain;
    device_bytes_written = (fun () -> Striped.bytes_written dev);
  }
