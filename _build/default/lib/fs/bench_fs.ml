type t = {
  fs_label : string;
  fs_clock : Aurora_sim.Clock.t;
  create_file : string -> unit;
  delete_file : string -> unit;
  write_file : path:string -> off:int -> len:int -> unit;
  read_file : path:string -> off:int -> len:int -> unit;
  fsync_file : string -> unit;
  drain : unit -> unit;
  device_bytes_written : unit -> int;
}
