(** A cost model of the ZFS write path for the Figure 3 comparison.

    Architecture modeled: 64 KiB records, copy-on-write of data and the
    indirect-block chain, dittoed (duplicated) metadata, transaction-group
    batching for async writes, and the ZFS intent log (ZIL) for synchronous
    semantics.  A sub-record write to an uncached record costs a
    read-modify-write of the whole record — the reason ZFS trails badly at
    4 KiB in Figure 3b.  The [checksum] variant adds the per-record
    checksumming CPU cost (ZFS+CSUM in Figure 3a/b). *)

val make : checksum:bool -> unit -> Bench_fs.t
