(** The common file-system surface FileBench drives.

    Figure 3 compares four write paths — Aurora's object store, ZFS with
    and without checksumming, and FFS with soft-updates journaling — over
    identical operation streams.  Each implementation owns its own striped
    device array (the paper's 4x Optane testbed) and charges its
    architecture's CPU and device costs; FileBench measures bytes and
    operations against elapsed virtual time. *)

type t = {
  fs_label : string;
  fs_clock : Aurora_sim.Clock.t;
  create_file : string -> unit;
  delete_file : string -> unit;
  write_file : path:string -> off:int -> len:int -> unit;
  read_file : path:string -> off:int -> len:int -> unit;
  fsync_file : string -> unit;
  drain : unit -> unit;
      (** Wait for asynchronous device work to settle (end of a run). *)
  device_bytes_written : unit -> int;
      (** Write amplification accounting. *)
}
