lib/fs/aurora_bench.mli: Bench_fs
