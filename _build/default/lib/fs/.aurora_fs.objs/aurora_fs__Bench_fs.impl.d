lib/fs/bench_fs.ml: Aurora_sim
