lib/fs/zfs_model.mli: Bench_fs
