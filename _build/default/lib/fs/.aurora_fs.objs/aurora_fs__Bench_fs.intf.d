lib/fs/bench_fs.mli: Aurora_sim
