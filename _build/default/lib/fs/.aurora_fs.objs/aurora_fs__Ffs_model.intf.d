lib/fs/ffs_model.mli: Bench_fs
