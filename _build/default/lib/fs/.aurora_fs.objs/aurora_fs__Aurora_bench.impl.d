lib/fs/aurora_bench.ml: Aurora_block Aurora_objstore Aurora_sim Aurora_vm Bench_fs Bytes Hashtbl Printf
