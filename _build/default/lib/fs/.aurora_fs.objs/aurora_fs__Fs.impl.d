lib/fs/fs.ml: Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Bytes Hashtbl List String
