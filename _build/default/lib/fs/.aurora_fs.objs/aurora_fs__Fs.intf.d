lib/fs/fs.mli: Aurora_kern Aurora_objstore Aurora_sim
