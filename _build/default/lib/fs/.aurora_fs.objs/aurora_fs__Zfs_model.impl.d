lib/fs/zfs_model.ml: Aurora_block Aurora_sim Bench_fs Bytes Hashtbl Printf
