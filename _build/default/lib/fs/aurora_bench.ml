module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Page = Aurora_vm.Page

type file = {
  oid : int;
  mutable size : int;
  dirty : (int, unit) Hashtbl.t; (* page indices dirtied since last flush *)
}

type state = {
  clk : Clock.t;
  dev : Striped.t;
  st : Store.t;
  files : (string, file) Hashtbl.t;
  period : int;
  mutable last_ckpt : int;
}

(* Flush every file's dirty pages into the open checkpoint and commit; the
   application is not stopped (FileBench models the file system, not a
   consistency group), so commit is asynchronous. *)
let checkpoint s =
  Hashtbl.iter
    (fun _ f ->
      if Hashtbl.length f.dirty > 0 then begin
        let pages =
          Hashtbl.fold
            (fun idx () acc -> (idx, Bytes.make Page.payload_size 'f') :: acc)
            f.dirty []
        in
        Store.put_pages s.st ~oid:f.oid pages;
        Hashtbl.reset f.dirty
      end)
    s.files;
  ignore (Store.commit_checkpoint s.st);
  ignore (Store.begin_checkpoint s.st);
  s.last_ckpt <- Clock.now s.clk

let maybe_checkpoint s =
  if Clock.now s.clk - s.last_ckpt >= s.period then checkpoint s

let file_of s path =
  match Hashtbl.find_opt s.files path with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "aurora_bench: no such file %s" path)

let make ?(period_ns = 10_000_000) () =
  let clk = Clock.create () in
  let dev = Striped.create () in
  let st = Store.format ~dev ~clock:clk in
  ignore (Store.begin_checkpoint st);
  let s =
    { clk; dev; st; files = Hashtbl.create 256; period = period_ns; last_ckpt = 0 }
  in
  let create_file path =
    (* Global namespace lock (unoptimized, per the paper): file creation
       is Aurora's weak column in Figure 3c. *)
    Clock.advance clk (12_500 + 1_100 + Cost.syscall_overhead);
    if not (Hashtbl.mem s.files path) then
      Hashtbl.replace s.files path
        { oid = Store.alloc_oid st; size = 0; dirty = Hashtbl.create 16 };
    maybe_checkpoint s
  in
  let delete_file path =
    Clock.advance clk (1_100 + Cost.syscall_overhead);
    Hashtbl.remove s.files path
  in
  let write_file ~path ~off ~len =
    let f = file_of s path in
    Clock.advance clk (Cost.syscall_overhead + Cost.copy_time len);
    let first = off / Page.logical_size and last = (off + len - 1) / Page.logical_size in
    for idx = first to last do
      Hashtbl.replace f.dirty idx ()
    done;
    if off + len > f.size then f.size <- off + len;
    maybe_checkpoint s
  in
  let read_file ~path ~off ~len =
    ignore off;
    let _f = file_of s path in
    (* The single level store keeps file data in memory: reads are copies. *)
    Clock.advance clk (Cost.syscall_overhead + Cost.copy_time len)
  in
  let fsync_file _path =
    (* No-op: checkpoint consistency (the Figure 3c/3d headline). *)
    Clock.advance clk Cost.syscall_overhead
  in
  let drain () =
    checkpoint s;
    Store.wait_durable st;
    Striped.settle dev ~clock:clk
  in
  {
    Bench_fs.fs_label = "Aurora";
    fs_clock = clk;
    create_file;
    delete_file;
    write_file;
    read_file;
    fsync_file;
    drain;
    device_bytes_written = (fun () -> Striped.bytes_written dev);
  }
