(** The Aurora file system: a namespace into the single level store.

    Files are vnodes whose pages live in VM objects (so memory-mapped
    regions and files are identical in the object store); the namespace
    (path -> inode) is itself a store object, and every vnode is a store
    object named by its inode.  Three properties from the paper
    (section 5.2):

    - {b Anonymous files survive}: an open-but-unlinked file is still a
      store object referenced by the checkpoint, so restore brings it back
      even though it has no name — conventional file systems reclaim it.
    - {b Vnodes are checkpointed by inode number}, avoiding namei/name-cache
      lookups during the checkpoint stop window.
    - {b fsync is a no-op}: durability comes from checkpoint consistency
      (the SLS flushes dirty file pages with every checkpoint); external
      synchrony and the Aurora API provide ordering where it matters.

    File creation takes a global namespace lock (the paper notes this is
    unoptimized, visible in Figure 3c's createfiles column). *)

type t

val create : store:Aurora_objstore.Store.t -> t
(** A fresh, empty file system over the store. *)

val store : t -> Aurora_objstore.Store.t
val clock : t -> Aurora_sim.Clock.t

(** {1 Namespace} *)

val lookup : t -> string -> Aurora_kern.Vnode.t option
val create_file : t -> string -> Aurora_kern.Vnode.t
val unlink : t -> string -> bool
val rename : t -> src:string -> dst:string -> bool
val paths : t -> string list
val vnode_by_inode : t -> int -> Aurora_kern.Vnode.t option

(** {1 Data} *)

val write : t -> Aurora_kern.Vnode.t -> off:int -> string -> unit
val read : t -> Aurora_kern.Vnode.t -> off:int -> len:int -> string
val fsync : t -> Aurora_kern.Vnode.t -> unit
(** No-op under checkpoint consistency; charges only the syscall. *)

(** {1 Checkpoint integration (called by the SLS orchestrator)} *)

val flush_to_store : t -> unit
(** Stage the namespace and every dirty vnode's dirty pages into the
    store's open checkpoint.  Vnodes are staged by inode number; unlinked
    vnodes that are still open are staged too (the hidden reference). *)

val restore_from_store : store:Aurora_objstore.Store.t -> epoch:int -> t
(** Rebuild the file system from a checkpoint: namespace, vnodes, sizes
    and page contents. *)

val oid_of_inode : t -> int -> int option
(** The store object backing an inode, once flushed; used by the SLS to
    reference file state from file-descriptor objects. *)

val vnode_by_oid : t -> int -> Aurora_kern.Vnode.t option
(** Inverse of {!oid_of_inode} (restore path: memory-mapped files). *)

val vfs_ops : t -> Aurora_kern.Vfs.ops
(** Mount adapter for the kernel. *)

val mark_open_after_restore : t -> int -> unit
(** Re-establish an open count on a restored vnode (called while the SLS
    relinks restored file descriptors). *)
