(** A cost model of the FFS (UFS2, SU+J) write path for Figure 3.

    Architecture modeled: in-place writes with fragments — sub-block
    writes go straight to their fragments without read-modify-write, and
    delayed allocation promotes them to full blocks before the I/O is
    issued (the optimized small-write path the paper credits for FFS's
    Figure 3b lead).  Soft-updates journaling makes metadata updates
    asynchronous with small journal records; fsync synchronously flushes
    the file's dirty data plus a journal record. *)

val make : unit -> Bench_fs.t
