module Store = Aurora_objstore.Store

let dump ~store ~epoch =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "ELF Core Dump (Aurora SLS checkpoint %d)\n" epoch;
  out "Class: ELF64  Machine: x86-64  Type: CORE\n\n";
  let objects = Store.objects_at store ~epoch in
  out "Program Headers (memory objects):\n";
  List.iter
    (fun (oid, kind) ->
      if kind = Serial.kind_memobj then begin
        let pages = Store.page_indices store ~epoch ~oid in
        let image = Serial.memobj_of_string (Store.read_meta store ~epoch ~oid) in
        out "  LOAD oid=%-6d pages=%-8d parent=%s\n" oid (List.length pages)
          (match image.Serial.i_parent_oid with
          | Some p -> string_of_int p
          | None -> "-")
      end)
    objects;
  out "\nNotes (POSIX objects):\n";
  List.iter
    (fun (oid, kind) ->
      if kind <> Serial.kind_memobj && kind <> Serial.kind_proc then
        out "  NOTE %-12s oid=%d size=%d\n" kind oid
          (String.length (Store.read_meta store ~epoch ~oid)))
    objects;
  out "\nThreads:\n";
  List.iter
    (fun (oid, kind) ->
      if kind = Serial.kind_proc then begin
        let p = Serial.proc_of_string (Store.read_meta store ~epoch ~oid) in
        out "  Process %d (%s) ppid=%d pgid=%d sid=%d fds=%d maps=%d\n"
          p.Serial.i_pid_local p.Serial.i_name p.Serial.i_ppid_local
          p.Serial.i_pgid p.Serial.i_sid (List.length p.Serial.i_fds)
          (List.length p.Serial.i_entries);
        List.iter
          (fun (t : Serial.thread_image) ->
            out "    Thread %d rip=%#x rsp=%#x rflags=%#x\n" t.Serial.i_tid_local
              t.Serial.i_regs.Serial.i_rip t.Serial.i_regs.Serial.i_rsp
              t.Serial.i_regs.Serial.i_rflags)
          p.Serial.i_threads
      end)
    objects;
  Buffer.contents buf
