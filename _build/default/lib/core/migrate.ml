module Cost = Aurora_sim.Cost
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire

let magic = "AURSTRM1"

let serialize_objects ~store ~epoch ~pages_of oids =
  let w = Wire.writer () in
  Wire.str w magic;
  Wire.u64 w epoch;
  Wire.list w
    (fun (oid, kind) ->
      Wire.u64 w oid;
      Wire.str w kind;
      Wire.str w (Store.read_meta store ~epoch ~oid);
      Wire.list w
        (fun (idx, payload) ->
          Wire.u32 w idx;
          Wire.str w (Bytes.to_string payload))
        (pages_of oid))
    oids;
  Bytes.to_string (Wire.contents w)

let serialize ~store ~epoch =
  serialize_objects ~store ~epoch
    ~pages_of:(fun oid -> Store.read_pages store ~epoch ~oid)
    (Store.objects_at store ~epoch)

(* Page-granular deltas: an object appears if it is new, its metadata
   changed, or some of its pages changed — and only the changed pages are
   shipped (the receiver composes them onto the base it already holds). *)
let serialize_incremental ~store ~base ~epoch =
  let base_objects = Store.objects_at store ~epoch:base in
  let delta_pages oid =
    let exists_in_base = List.exists (fun (o, _) -> o = oid) base_objects in
    let current = Store.read_pages store ~epoch ~oid in
    if not exists_in_base then current
    else begin
      let old = Store.read_pages store ~epoch:base ~oid in
      List.filter
        (fun (idx, payload) ->
          match List.assoc_opt idx old with
          | Some old_payload -> not (Bytes.equal payload old_payload)
          | None -> true)
        current
    end
  in
  let changed_meta (oid, _) =
    (not (List.exists (fun (o, _) -> o = oid) base_objects))
    || Store.read_meta store ~epoch ~oid <> Store.read_meta store ~epoch:base ~oid
  in
  let page_deltas = Hashtbl.create 32 in
  let objects =
    List.filter
      (fun (oid, _) ->
        let pages = delta_pages oid in
        Hashtbl.replace page_deltas oid pages;
        pages <> [] || changed_meta (oid, ""))
      (Store.objects_at store ~epoch)
  in
  serialize_objects ~store ~epoch
    ~pages_of:(fun oid -> Option.value ~default:[] (Hashtbl.find_opt page_deltas oid))
    objects

let stream_size s = String.length s

let install ~store stream =
  let r = Wire.reader (Bytes.of_string stream) in
  (match Wire.rstr r with
  | m when m = magic -> ()
  | _ -> failwith "Migrate.install: bad stream magic"
  | exception Wire.Corrupt msg -> failwith ("Migrate.install: " ^ msg));
  let _src_epoch = Wire.ru64 r in
  let objects =
    Wire.rlist r (fun r ->
        let oid = Wire.ru64 r in
        let kind = Wire.rstr r in
        let meta = Wire.rstr r in
        let pages =
          Wire.rlist r (fun r ->
              let idx = Wire.ru32 r in
              let payload = Bytes.of_string (Wire.rstr r) in
              (idx, payload))
        in
        (oid, kind, meta, pages))
  in
  let epoch = Store.begin_checkpoint store in
  List.iter
    (fun (oid, kind, meta, pages) ->
      Store.reserve_oids store ~upto:oid;
      Store.put_object store ~oid ~kind ~meta;
      Store.put_pages store ~oid pages)
    objects;
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  epoch

let transfer_time_ns ~bytes =
  Cost.net_one_way_latency + Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes
