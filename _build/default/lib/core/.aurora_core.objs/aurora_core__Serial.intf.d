lib/core/serial.mli: Aurora_kern Either
