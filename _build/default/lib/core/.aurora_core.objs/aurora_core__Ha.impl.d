lib/core/ha.ml: Aurora_kern Aurora_objstore Aurora_sim Group Migrate Restore
