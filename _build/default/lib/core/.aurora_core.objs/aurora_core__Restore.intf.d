lib/core/restore.mli: Aurora_fs Aurora_kern Aurora_objstore Group
