lib/core/sls.ml: Aurora_block Aurora_fs Aurora_kern Aurora_objstore Aurora_sim Group Restore
