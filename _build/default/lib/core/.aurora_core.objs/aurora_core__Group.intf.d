lib/core/group.mli: Aurora_fs Aurora_kern Aurora_objstore Aurora_sim Aurora_vm
