lib/core/ha.mli: Aurora_kern Aurora_objstore Group Restore
