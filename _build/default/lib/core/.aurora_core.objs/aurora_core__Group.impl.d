lib/core/group.ml: Aurora_fs Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Either Hashtbl List Option Serial
