lib/core/sls.mli: Aurora_block Aurora_fs Aurora_kern Aurora_objstore Group Restore
