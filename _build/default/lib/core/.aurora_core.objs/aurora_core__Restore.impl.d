lib/core/restore.ml: Aurora_fs Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Bytes Either Group Hashtbl List Printf Serial
