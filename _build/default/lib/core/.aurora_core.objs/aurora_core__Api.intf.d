lib/core/api.mli: Aurora_kern Aurora_objstore Aurora_vm Group Restore
