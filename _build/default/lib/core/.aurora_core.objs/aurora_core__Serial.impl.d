lib/core/serial.ml: Array Aurora_kern Aurora_objstore Bytes Either Printf
