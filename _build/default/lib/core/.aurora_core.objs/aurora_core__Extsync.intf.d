lib/core/extsync.mli:
