lib/core/coredump.mli: Aurora_objstore
