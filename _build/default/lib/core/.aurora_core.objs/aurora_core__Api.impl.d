lib/core/api.ml: Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Group Restore
