lib/core/replay.mli: Aurora_kern Aurora_objstore Group
