lib/core/coredump.ml: Aurora_objstore Buffer List Printf Serial String
