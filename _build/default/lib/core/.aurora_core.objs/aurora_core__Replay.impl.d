lib/core/replay.ml: Api Aurora_kern Aurora_objstore Aurora_sim Bytes Group List Printf
