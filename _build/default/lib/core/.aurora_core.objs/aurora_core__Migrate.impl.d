lib/core/migrate.ml: Aurora_objstore Aurora_sim Bytes Hashtbl List Option String
