lib/core/migrate.mli: Aurora_objstore
