lib/core/extsync.ml: List
