(** [sls dump]: render a checkpoint as an ELF-core-style textual dump.

    Any retained checkpoint (or the running state, via a fresh checkpoint)
    can be extracted for debugging.  The dump lists program headers for
    each memory object, note sections for each POSIX object, and the
    register state of every thread, in the spirit of `readelf -a` output
    over a real coredump. *)

val dump : store:Aurora_objstore.Store.t -> epoch:int -> string
