module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Store = Aurora_objstore.Store

type t = {
  primary : Group.t;
  standby_store : Store.t;
  mutable last_shipped : int; (* primary epoch *)
  mutable total_bytes : int;
}

let create ~primary ~standby_store =
  { primary; standby_store; last_shipped = 0; total_bytes = 0 }

let replicate t =
  let epoch = Group.last_epoch t.primary in
  if epoch = 0 || epoch = t.last_shipped then 0
  else begin
    let store = Group.store t.primary in
    let stream =
      if t.last_shipped = 0 then Migrate.serialize ~store ~epoch
      else Migrate.serialize_incremental ~store ~base:t.last_shipped ~epoch
    in
    let bytes = Migrate.stream_size stream in
    (* The wire time lands on the standby: it can only fail over once the
       stream has fully arrived and installed. *)
    Clock.advance
      (Store.clock t.standby_store)
      (Migrate.transfer_time_ns ~bytes);
    ignore (Migrate.install ~store:t.standby_store stream);
    t.last_shipped <- epoch;
    t.total_bytes <- t.total_bytes + bytes;
    bytes
  end

let shipped_epoch t = t.last_shipped
let lag_epochs t = Group.last_epoch t.primary - t.last_shipped
let bytes_replicated t = t.total_bytes

let failover t ~machine = Restore.restore ~machine ~store:t.standby_store ()
