(** [sls send] / [sls recv]: ship checkpoints between machines.

    A checkpoint serializes to a self-contained byte stream (all objects,
    metadata and pages); the receiver installs it as a fresh checkpoint in
    its own store and can then restore it.  {!send_incremental} ships only
    the objects whose version changed since a base epoch, which is the
    building block for live migration and high availability (pre-copy
    iterations of dirty state). *)

val serialize : store:Aurora_objstore.Store.t -> epoch:int -> string
(** The full checkpoint as a portable stream. *)

val serialize_incremental :
  store:Aurora_objstore.Store.t -> base:int -> epoch:int -> string
(** Only objects whose pages or metadata changed between the epochs. *)

val stream_size : string -> int

val install :
  store:Aurora_objstore.Store.t -> string -> int
(** Install a stream as a new checkpoint in the target store; returns its
    epoch there.  Raises [Failure] on a corrupt stream. *)

val transfer_time_ns : bytes:int -> int
(** Time to push a stream over the 10 GbE link of the testbed. *)
