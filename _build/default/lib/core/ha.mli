(** High availability by continuous checkpoint shipping (paper sections 3
    and 10): the primary's incremental checkpoints stream to a standby's
    store over the network; on primary failure the standby restores the
    last shipped checkpoint and takes over.  The recovery point is the
    last replicated epoch — with 10 ms checkpoints and page-granular
    deltas, typically a handful of milliseconds of work. *)

type t

val create :
  primary:Group.t -> standby_store:Aurora_objstore.Store.t -> t

val replicate : t -> int
(** Ship everything the standby has not seen (the first call ships the
    full checkpoint, later calls page-granular deltas); installs it in
    the standby store and charges the transfer to the standby's clock.
    Returns the bytes shipped (0 when the standby is current). *)

val shipped_epoch : t -> int
(** The primary epoch the standby could fail over to right now. *)

val lag_epochs : t -> int
(** Primary epochs not yet replicated. *)

val bytes_replicated : t -> int

val failover : t -> machine:Aurora_kern.Machine.t -> Restore.result
(** The primary is gone: restore the last shipped checkpoint on the
    standby machine. *)
