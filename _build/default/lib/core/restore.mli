(** Restore: recreate a consistency group from a store checkpoint.

    Restore inverts the POSIX object model: each store object is recreated
    exactly once and the identifier references between them relink the
    sharing — two fd-table slots that named the same description oid share
    one description again, a description and a memory mapping that named
    the same vnode meet at the same vnode, UNIX socket pairs are re-paired,
    and in-flight SCM_RIGHTS descriptors come back inside their socket
    buffers.

    PIDs and TIDs are virtualized (section 5.3): the restored process
    keeps its checkpoint-time local pid while the machine assigns a fresh
    global pid.  Parents of ephemeral (unpersisted) children receive
    SIGCHLD.  Device mappings are re-injected fresh — the vDSO of the
    restoring platform, not the checkpointed one. *)

type result = {
  group : Group.t;
  procs : Aurora_kern.Process.t list;
  fs : Aurora_fs.Fs.t option;
  restore_ns : int;  (** charged virtual time of the restore itself *)
}

val groups_at :
  store:Aurora_objstore.Store.t -> epoch:int -> (int * int list) list
(** The consistency groups in a checkpoint: [(group oid, member process
    oids)].  A store hosts one group per application or container
    (paper section 3); list them to pick which to restore. *)

val restore :
  machine:Aurora_kern.Machine.t ->
  store:Aurora_objstore.Store.t ->
  ?epoch:int ->
  ?lazy_pages:bool ->
  ?group_oid:int ->
  unit ->
  result
(** Rebuild the group checkpointed in [epoch] (default: the last complete
    checkpoint) into [machine].  When the checkpoint holds several
    consistency groups, [group_oid] selects one (see {!groups_at});
    omitting it with multiple groups raises [Failure].

    With [lazy_pages] (default false) the restore charges only the OS
    state reconstruction — memory pages are brought in after the measured
    window, modeling Aurora's lazy restore where the application pages in
    its working set on demand (section 6, "Memory Overcommitment").
    Contents are identical either way. *)
