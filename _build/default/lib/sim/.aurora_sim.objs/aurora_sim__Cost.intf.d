lib/sim/cost.mli:
