lib/sim/resource.ml:
