lib/sim/clock.ml:
