lib/sim/clock.mli:
