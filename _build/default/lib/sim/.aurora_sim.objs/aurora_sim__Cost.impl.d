lib/sim/cost.ml:
