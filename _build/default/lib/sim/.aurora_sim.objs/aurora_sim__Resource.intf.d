lib/sim/resource.mli:
