(** Virtual time.

    Every simulated machine owns one clock.  Operations on the simulated
    kernel, VM system, object store and devices charge their modeled cost
    against the clock with {!advance}; benchmark harnesses read elapsed
    virtual time with {!now} and {!elapsed_since}.

    Time is an [int] count of nanoseconds, which covers ~292 years on a
    63-bit platform. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> int

val advance : t -> int -> unit
(** [advance t ns] moves time forward. [ns] must be non-negative. *)

val advance_to : t -> int -> unit
(** [advance_to t when_] moves time forward to [when_] if it is in the
    future; no-op otherwise.  Used when waiting for an asynchronous device
    completion. *)

val elapsed_since : t -> int -> int
(** [elapsed_since t start] is [now t - start]. *)
