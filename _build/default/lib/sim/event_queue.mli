(** Discrete-event scheduling.

    The client-server benchmarks (Memcached under Mutilate load, RocksDB
    latency percentiles) are queueing simulations: request arrivals, service
    completions and checkpoint triggers are events ordered by virtual time.
    This module is the priority queue driving them.

    Events scheduled for the same instant fire in insertion order, which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val schedule : 'a t -> time:int -> 'a -> unit
(** Insert an event at the given virtual time. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest event without removing it. *)

val run : 'a t -> clock:Clock.t -> handler:(int -> 'a -> unit) -> until:int -> unit
(** [run q ~clock ~handler ~until] pops events in order, advancing [clock]
    to each event's time and calling [handler time event], until the queue is
    empty or the next event is later than [until].  The handler may schedule
    further events. *)
