type t = { mutable time : int }

let create () = { time = 0 }
let now t = t.time

let advance t ns =
  assert (ns >= 0);
  t.time <- t.time + ns

let advance_to t when_ = if when_ > t.time then t.time <- when_
let elapsed_since t start = t.time - start
