module Vm_space = Aurora_vm.Vm_space

type state = Alive | Zombie of int

type t = {
  pid_local : int;
  mutable pid_global : int;
  mutable ppid : int;
  mutable pgid : int;
  mutable sid : int;
  mutable name : string;
  mutable threads : Thread.t list;
  fdtable : (int, Fdesc.t) Hashtbl.t;
  mutable next_fd : int;
  space : Vm_space.t;
  mutable proc_state : state;
  mutable children : int list;
  mutable pending_signals : int list;
  mutable ephemeral : bool;
  mutable cwd : string;
}

let sigchld = 20 (* FreeBSD SIGCHLD *)

let create ~clock ~pid ~tid ~ppid ~name =
  {
    pid_local = pid;
    pid_global = pid;
    ppid;
    pgid = pid;
    sid = pid;
    name;
    threads = [ Thread.create ~tid ];
    fdtable = Hashtbl.create 16;
    next_fd = 0;
    space = Vm_space.create ~clock;
    proc_state = Alive;
    children = [];
    pending_signals = [];
    ephemeral = false;
    cwd = "/";
  }

let alloc_fd t desc =
  let rec free n = if Hashtbl.mem t.fdtable n then free (n + 1) else n in
  let slot = free 0 in
  Hashtbl.replace t.fdtable slot desc;
  slot

let install_fd_at t slot desc =
  (match Hashtbl.find_opt t.fdtable slot with
  | Some old -> Fdesc.release old
  | None -> ());
  Hashtbl.replace t.fdtable slot desc

let fd t slot = Hashtbl.find_opt t.fdtable slot

let close_fd t slot =
  match Hashtbl.find_opt t.fdtable slot with
  | None -> false
  | Some desc ->
      Fdesc.release desc;
      Hashtbl.remove t.fdtable slot;
      true

let fd_count t = Hashtbl.length t.fdtable

let fds t =
  Hashtbl.fold (fun slot desc acc -> (slot, desc) :: acc) t.fdtable []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let main_thread t =
  match t.threads with
  | thr :: _ -> thr
  | [] -> invalid_arg "Process.main_thread: no threads"

let signal t signo =
  if not (List.mem signo t.pending_signals) then
    t.pending_signals <- t.pending_signals @ [ signo ]

let take_signal t =
  match t.pending_signals with
  | [] -> None
  | signo :: rest ->
      t.pending_signals <- rest;
      Some signo
