type ops = {
  lookup : string -> Vnode.t option;
  create : string -> Vnode.t;
  unlink : string -> bool;
  fsync : Vnode.t -> unit;
  sync_cost : unit -> int;
}

let ram_ops ~clock =
  ignore clock;
  let table : (string, Vnode.t) Hashtbl.t = Hashtbl.create 64 in
  let next_inode = ref 0 in
  let lookup path = Hashtbl.find_opt table path in
  let create path =
    match Hashtbl.find_opt table path with
    | Some vn ->
        Vnode.set_size vn 0;
        vn
    | None ->
        incr next_inode;
        let vn = Vnode.create ~inode:!next_inode in
        Vnode.link vn;
        Hashtbl.replace table path vn;
        vn
  in
  let unlink path =
    match Hashtbl.find_opt table path with
    | None -> false
    | Some vn ->
        Vnode.unlink vn;
        Hashtbl.remove table path;
        true
  in
  { lookup; create; unlink; fsync = (fun _ -> ()); sync_cost = (fun () -> 0) }
