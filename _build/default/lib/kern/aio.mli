(** Asynchronous I/O requests (paper section 5.3).

    AIOs are issued by kernel threads or the device itself; a checkpoint
    must account for them: in-flight {e writes} delay the checkpoint's
    completion until their data is incorporated, while in-flight {e reads}
    are recorded in the checkpoint and reissued during restore. *)

type op = Aio_read | Aio_write

type t = {
  aio_id : int;
  aio_op : op;
  aio_slot : int;  (** the fd the request was issued against *)
  aio_off : int;
  aio_len : int;
  mutable done_at : int;  (** virtual completion time *)
  mutable result : string option;  (** read data, available at completion *)
}

val create : op:op -> slot:int -> off:int -> len:int -> done_at:int -> t
