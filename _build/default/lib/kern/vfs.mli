(** The VFS boundary: the operations the kernel needs from a mounted file
    system.  The Aurora FS (lib/fs) provides an implementation backed by
    the object store; tests can mount a trivial in-memory one. *)

type ops = {
  lookup : string -> Vnode.t option;
  create : string -> Vnode.t;  (** creates (or truncates) a regular file *)
  unlink : string -> bool;  (** removes the name; false if absent *)
  fsync : Vnode.t -> unit;  (** charged by the implementation *)
  sync_cost : unit -> int;  (** modeled nanoseconds for one fsync *)
}

val ram_ops : clock:Aurora_sim.Clock.t -> ops
(** A minimal RAM filesystem for kernel tests: no persistence, fsync is a
    no-op namespace over {!Vnode.t}. *)
