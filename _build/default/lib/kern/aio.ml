type op = Aio_read | Aio_write

type t = {
  aio_id : int;
  aio_op : op;
  aio_slot : int;
  aio_off : int;
  aio_len : int;
  mutable done_at : int;
  mutable result : string option;
}

let next_id = ref 0

let create ~op ~slot ~off ~len ~done_at =
  incr next_id;
  {
    aio_id = !next_id;
    aio_op = op;
    aio_slot = slot;
    aio_off = off;
    aio_len = len;
    done_at;
    result = None;
  }
