lib/kern/syscall.mli: Aio Aurora_vm Fdesc Kqueue Machine Process Shm Socket Thread
