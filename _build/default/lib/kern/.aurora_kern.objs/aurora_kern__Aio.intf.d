lib/kern/aio.mli:
