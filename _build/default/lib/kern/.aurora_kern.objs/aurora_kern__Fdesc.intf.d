lib/kern/fdesc.mli: Kqueue Pipe Pty Shm Socket Vnode
