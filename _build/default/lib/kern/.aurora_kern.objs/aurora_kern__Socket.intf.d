lib/kern/socket.mli:
