lib/kern/fdesc.ml: Kqueue Pipe Pty Shm Socket Vnode
