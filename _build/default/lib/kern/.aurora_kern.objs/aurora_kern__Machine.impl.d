lib/kern/machine.ml: Aio Aurora_sim Fdesc Hashtbl List Process Shm Thread Vfs
