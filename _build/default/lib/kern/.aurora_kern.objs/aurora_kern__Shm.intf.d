lib/kern/shm.mli: Aurora_vm
