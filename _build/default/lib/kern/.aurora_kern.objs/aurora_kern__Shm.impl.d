lib/kern/shm.ml: Aurora_vm
