lib/kern/pipe.mli:
