lib/kern/socket.ml: List Queue String
