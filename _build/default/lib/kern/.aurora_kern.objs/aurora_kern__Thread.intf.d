lib/kern/thread.mli: Aurora_sim
