lib/kern/vnode.mli: Aurora_sim Aurora_vm
