lib/kern/process.ml: Aurora_vm Fdesc Hashtbl List Thread
