lib/kern/pty.mli:
