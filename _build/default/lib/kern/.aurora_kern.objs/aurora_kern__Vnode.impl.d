lib/kern/vnode.ml: Aurora_sim Aurora_vm Hashtbl List String
