lib/kern/thread.ml: Array Aurora_sim Bytes
