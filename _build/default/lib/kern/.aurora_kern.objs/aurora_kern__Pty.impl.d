lib/kern/pty.ml: Buffer
