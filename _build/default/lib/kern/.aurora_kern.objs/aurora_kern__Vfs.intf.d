lib/kern/vfs.mli: Aurora_sim Vnode
