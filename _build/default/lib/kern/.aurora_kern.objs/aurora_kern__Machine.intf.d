lib/kern/machine.mli: Aio Aurora_sim Fdesc Hashtbl Process Shm Vfs
