lib/kern/syscall.ml: Aio Array Aurora_sim Aurora_vm Bytes Fdesc Hashtbl Kqueue List Machine Option Pipe Process Pty Shm Socket String Thread Vfs Vnode
