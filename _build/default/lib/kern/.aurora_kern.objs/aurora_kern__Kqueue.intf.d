lib/kern/kqueue.mli:
