lib/kern/pipe.ml: Buffer String
