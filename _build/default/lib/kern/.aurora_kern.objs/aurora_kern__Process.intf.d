lib/kern/process.mli: Aurora_sim Aurora_vm Fdesc Hashtbl Thread
