lib/kern/kqueue.ml: List
