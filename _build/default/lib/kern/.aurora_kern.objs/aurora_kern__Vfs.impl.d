lib/kern/vfs.ml: Hashtbl Vnode
