lib/kern/aio.ml:
