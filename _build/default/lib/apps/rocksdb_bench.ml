module Clock = Aurora_sim.Clock
module Histogram = Aurora_util.Histogram
module Machine = Aurora_kern.Machine
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Prefix_dist = Aurora_workloads.Prefix_dist

type config = Cfg_none | Cfg_aurora_100hz | Cfg_wal | Cfg_aurora_wal

let config_label = function
  | Cfg_none -> "RocksDB"
  | Cfg_aurora_100hz -> "Aurora-100Hz"
  | Cfg_wal -> "RocksDB+WAL"
  | Cfg_aurora_wal -> "Aurora+WAL"

let config_is_sync = function
  | Cfg_none | Cfg_aurora_100hz -> false
  | Cfg_wal | Cfg_aurora_wal -> true

type outcome = {
  throughput_ops : float;
  p99_write_ns : float;
  p999_write_ns : float;
  ops_run : int;
}

type instance =
  | Vanilla of Rocksdb.t * (Group.t * int) option
  | Customized of Rocksdb_aurora.t

(* Latency is measured through a bounded closed loop of [clients]
   concurrent requesters multiplexed onto the service timeline: request i
   is issued when request (i - clients) completes, so a checkpoint stop or
   a group-commit sync is observed by the whole window of in-flight
   requests — the way concurrent writers in the real benchmark observe a
   stop — while the backlog stays bounded, as a closed loop's does. *)
let clients = 256

let run config ~ops ~nkeys ~seed =
  let sys = Sls.boot () in
  let machine = sys.Sls.machine in
  let clk = machine.Machine.clock in
  let workload = Prefix_dist.create ~nkeys ~seed () in
  let instance =
    match config with
    | Cfg_none -> Vanilla (Rocksdb.create ~machine ~nkeys Rocksdb.Ephemeral, None)
    | Cfg_wal -> Vanilla (Rocksdb.create ~machine ~nkeys Rocksdb.Wal_synced, None)
    | Cfg_aurora_100hz ->
        let db = Rocksdb.create ~machine ~nkeys Rocksdb.Ephemeral in
        let period = 10_000_000 in
        let grp = Sls.attach ~period_ns:period sys [ Rocksdb.proc db ] in
        Vanilla (db, Some (grp, period))
    | Cfg_aurora_wal ->
        Customized
          (Rocksdb_aurora.create ~sys ~nkeys ~wal_limit:(64 * 1024 * 1024) ())
  in
  (* Load phase: populate every key so reads hit and the first checkpoint
     covers the whole database. *)
  (match instance with
  | Vanilla (db, _) ->
      for key = 0 to nkeys - 1 do
        ignore (Rocksdb.put db ~key ~value_bytes:Prefix_dist.mean_value_bytes)
      done
  | Customized db ->
      for key = 0 to nkeys - 1 do
        ignore (Rocksdb_aurora.put db ~key ~value_bytes:Prefix_dist.mean_value_bytes)
      done);
  (match instance with
  | Vanilla (_, Some (grp, _)) -> ignore (Group.checkpoint ~wait_durable:true grp)
  | Vanilla (_, None) | Customized _ -> ());
  let next_ckpt = ref (Clock.now clk + 10_000_000) in
  let service () =
    (match instance with
    | Vanilla (_, Some (grp, period)) when Clock.now clk >= !next_ckpt ->
        ignore (Group.checkpoint grp);
        next_ckpt := Clock.now clk + period
    | Vanilla _ | Customized _ -> ());
    match Prefix_dist.next workload with
    | Prefix_dist.Db_put (key, value_bytes) ->
        let lat =
          match instance with
          | Vanilla (db, _) -> Rocksdb.put db ~key ~value_bytes
          | Customized db -> Rocksdb_aurora.put db ~key ~value_bytes
        in
        (lat, true)
    | Prefix_dist.Db_get key ->
        let lat =
          match instance with
          | Vanilla (db, _) -> Rocksdb.get db ~key
          | Customized db -> Rocksdb_aurora.get db ~key
        in
        (lat, false)
  in
  let writes = Histogram.create () in
  let ring = Array.make clients 0 in
  let completion = ref 0 in
  for i = 0 to ops - 1 do
    let svc, is_write = service () in
    (* The slot's previous completion is when this request was issued. *)
    let arrival = ring.(i mod clients) in
    completion := max arrival !completion + svc;
    ring.(i mod clients) <- !completion;
    if is_write then Histogram.add writes (float_of_int (!completion - arrival))
  done;
  {
    throughput_ops =
      (if !completion = 0 then 0.0
       else float_of_int ops /. (float_of_int !completion /. 1e9));
    p99_write_ns = Histogram.percentile writes 99.0;
    p999_write_ns = Histogram.percentile writes 99.9;
    ops_run = ops;
  }
