(** A Memcached miniature running on the simulated kernel.

    The item arena is a real mapped region: every GET touches and every
    SET dirties the pages the addressed item occupies, so when Aurora
    transparently checkpoints the process, the dirty sets, the COW marking
    cost, and the post-checkpoint refault storms all emerge from the real
    VM machinery rather than from a closed-form model (Figures 4 and 5
    depend on exactly these effects). *)

type t

val create : machine:Aurora_kern.Machine.t -> nkeys:int -> t

val proc : t -> Aurora_kern.Process.t

val get : t -> int -> unit
(** Look up a key: hash-table probe cost plus reading the item's page. *)

val set : t -> int -> value_bytes:int -> unit
(** Store a value: probe cost plus dirtying the item's page(s). *)

val base_service_ns : int
(** Aggregate per-operation CPU of the server at saturation (the paper's
    16-core testbed peaks around 1.1 M ops/s without persistence). *)

val arena_pages : t -> int
