module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Event_queue = Aurora_sim.Event_queue
module Resource = Aurora_sim.Resource
module Histogram = Aurora_util.Histogram
module Rng = Aurora_util.Rng
module Machine = Aurora_kern.Machine
module Syscall = Aurora_kern.Syscall
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Mutilate = Aurora_workloads.Mutilate
module Extsync = Aurora_core.Extsync

type load = Closed_loop of int | Open_poisson of float

type config = {
  period_ns : int option;
  load : load;
  duration_ns : int;
  nkeys : int;
  seed : int;
  ext_sync : bool;
}

type outcome = {
  throughput_ops : float;
  avg_latency_ns : float;
  p95_latency_ns : float;
  completed : int;
  checkpoints : int;
  avg_stop_ns : float;
  avg_set_latency_ns : float;
  avg_get_latency_ns : float;
}

type event = Request | Ckpt_due

(* Fixed client-side round trip: two link crossings plus socket CPU at
   both ends. *)
let rtt_fixed = (2 * Cost.net_one_way_latency) + (4 * Cost.net_per_message_cpu)

let run cfg =
  let sys = Sls.boot () in
  let machine = sys.Sls.machine in
  let clk = machine.Machine.clock in
  let app = Memcached_sim.create ~machine ~nkeys:cfg.nkeys in
  (* The server's client connections are real sockets (they make the OS
     state of each checkpoint realistic: mutilate uses 4 machines x 12
     threads x 12 connections). *)
  let p = Memcached_sim.proc app in
  for _ = 1 to 288 do
    let fd = Syscall.socket machine p Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
    ignore fd
  done;
  let workload = Mutilate.create ~nkeys:cfg.nkeys ~seed:cfg.seed () in
  (* Warm the arena so the first checkpoint is the big one and the
     measured window is steady-state incremental. *)
  for key = 0 to cfg.nkeys - 1 do
    Memcached_sim.set app key ~value_bytes:Mutilate.mean_value_bytes
  done;
  let group_opt =
    match cfg.period_ns with
    | None -> None
    | Some period ->
        let group = Sls.attach ~period_ns:period sys [ p ] in
        ignore (Group.checkpoint ~wait_durable:true group);
        Some (group, period)
  in
  let server = Resource.create ~name:"memcached-workers" in
  let q : event Event_queue.t = Event_queue.create () in
  let rng = Rng.create (cfg.seed + 17) in
  let latencies = Histogram.create () in
  let set_lat = Histogram.create () in
  let get_lat = Histogram.create () in
  let stops = Histogram.create () in
  let outbox = Extsync.create () in
  let completed = ref 0 in
  let checkpoints = ref 0 in
  let t_start = Clock.now clk in
  let warmup_until = t_start + (cfg.duration_ns / 5) in
  let t_end = t_start + cfg.duration_ns in
  (* Returns whether the request mutated state (a SET). *)
  let apply_op () =
    match Mutilate.next workload with
    | Mutilate.Get key ->
        Memcached_sim.get app key;
        false
    | Mutilate.Set (key, value_bytes) ->
        Memcached_sim.set app key ~value_bytes;
        true
  in
  let handle time = function
    | Request ->
        (* Execute against the real arena; the clock delta is the op's
           fault cost (large right after a checkpoint downgraded PTEs). *)
        let t0 = Clock.now clk in
        let is_set = apply_op () in
        let fault_ns = Clock.now clk - t0 in
        let duration = Memcached_sim.base_service_ns + fault_ns in
        let completion = Resource.submit server ~now:time ~duration in
        let record response_sent =
          let latency = response_sent - time + rtt_fixed in
          if time >= warmup_until then begin
            Histogram.add latencies (float_of_int latency);
            Histogram.add (if is_set then set_lat else get_lat) (float_of_int latency);
            incr completed
          end;
          match cfg.load with
          | Closed_loop _ ->
              (* The connection issues its next request when the response
                 arrives back at the client. *)
              if response_sent + rtt_fixed < t_end then
                Event_queue.schedule q ~time:(response_sent + rtt_fixed) Request
          | Open_poisson _ -> ()
        in
        if cfg.ext_sync && is_set && group_opt <> None then
          (* External synchrony: the response leaves only when the
             checkpoint covering this mutation is durable. *)
          Extsync.buffer outbox ~epoch:(!checkpoints + 1)
            {
              Extsync.tag = "set-response";
              deliver = (fun ~release_time -> record (max completion release_time));
            }
        else record completion
    | Ckpt_due -> (
        match group_opt with
        | None -> ()
        | Some (group, period) ->
            let stats = Group.checkpoint group in
            incr checkpoints;
            if time >= warmup_until then
              Histogram.add stops (float_of_int stats.Group.stop_ns);
            (* The whole worker pool is quiesced for the stop window. *)
            ignore (Resource.submit server ~now:time ~duration:stats.Group.stop_ns);
            (* Withheld responses from the just-covered interval go out
               once the checkpoint is durable. *)
            ignore
              (Extsync.release_up_to outbox ~epoch:!checkpoints
                 ~now:stats.Group.durable_at);
            if time + period < t_end then
              Event_queue.schedule q ~time:(time + period) Ckpt_due)
  in
  (* Seed the event streams. *)
  (match cfg.load with
  | Closed_loop conns ->
      for i = 0 to conns - 1 do
        Event_queue.schedule q ~time:(t_start + (i * 100)) Request
      done
  | Open_poisson rate ->
      let t = ref t_start in
      while !t < t_end do
        t := !t + int_of_float (Rng.exponential rng ~mean:(1e9 /. rate));
        if !t < t_end then Event_queue.schedule q ~time:!t Request
      done);
  (match group_opt with
  | Some (_, period) -> Event_queue.schedule q ~time:(t_start + period) Ckpt_due
  | None -> ());
  Event_queue.run q ~clock:clk ~handler:(fun time ev -> handle time ev) ~until:t_end;
  (* Responses still withheld at the end never reached a client — exactly
     what external synchrony guarantees on a crash. *)
  ignore (Extsync.drop_all outbox);
  let measured_ns = max 1 (min (Clock.now clk) t_end - warmup_until) in
  {
    throughput_ops = float_of_int !completed /. (float_of_int measured_ns /. 1e9);
    avg_latency_ns = Histogram.mean latencies;
    p95_latency_ns = Histogram.percentile latencies 95.0;
    completed = !completed;
    checkpoints = !checkpoints;
    avg_stop_ns = Histogram.mean stops;
    avg_set_latency_ns = Histogram.mean set_lat;
    avg_get_latency_ns = Histogram.mean get_lat;
  }
