module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Wire = Aurora_objstore.Wire
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Api = Aurora_core.Api
module Restore = Aurora_core.Restore

let insert_cpu = 300
let lookup_cpu = 250
let nodes_per_page = 16

type t = {
  machine : Machine.t;
  grp : Group.t;
  db_proc : Process.t;
  node_base : int;
  value_base : int;
  nkeys : int;
  table : (int, int) Hashtbl.t;
  journal : Api.journal;
  wal_limit : int;
  wal_group_size : int;
  mutable wal_bytes : int;
  mutable wal_pos : int;
  mutable batch : (int * int) list; (* buffered (key, size) records *)
  mutable n_checkpoints : int;
}

let journal_record batch =
  let w = Wire.writer () in
  Wire.list w
    (fun (key, size) ->
      Wire.u64 w key;
      Wire.u32 w size)
    batch;
  Bytes.to_string (Wire.contents w)

let parse_record s =
  let r = Wire.reader (Bytes.of_string s) in
  Wire.rlist r (fun r ->
      let key = Wire.ru64 r in
      let size = Wire.ru32 r in
      (key, size))

let create_raw ~sys ~nkeys ~wal_limit ~wal_group_size ~journal ~group ~proc
    ~node_base ~value_base =
  {
    machine = sys.Sls.machine;
    grp = group;
    db_proc = proc;
    node_base;
    value_base;
    nkeys;
    table = Hashtbl.create (2 * nkeys);
    journal;
    wal_limit;
    wal_group_size;
    wal_bytes = 0;
    wal_pos = 0;
    batch = [];
    n_checkpoints = 0;
  }

let create ~sys ~nkeys ?(wal_limit = 32 * 1024 * 1024) ?(wal_group_size = 48) () =
  let machine = sys.Sls.machine in
  let proc = Syscall.spawn machine ~name:"rocksdb-aurora" in
  let node_pages = (nkeys + nodes_per_page - 1) / nodes_per_page in
  let value_pages = (nkeys + 7) / 8 in
  let nodes = Syscall.mmap_anon proc ~npages:node_pages in
  let values = Syscall.mmap_anon proc ~npages:value_pages in
  let group = Sls.attach sys [ proc ] in
  let journal = Api.sls_journal_open group ~size:(2 * wal_limit) in
  (* The baseline image every journal replay composes onto. *)
  ignore (Group.checkpoint ~wait_durable:true group);
  create_raw ~sys ~nkeys ~wal_limit ~wal_group_size ~journal ~group ~proc
    ~node_base:(Vm_space.addr_of_entry nodes)
    ~value_base:(Vm_space.addr_of_entry values)

let group t = t.grp
let proc t = t.db_proc

let touch_node t key ~write =
  let addr = t.node_base + (key / nodes_per_page * Page.logical_size) in
  if write then Vm_space.touch_write t.db_proc.Process.space ~addr ~len:64
  else Vm_space.touch_read t.db_proc.Process.space ~addr ~len:64

(* Values of a few hundred bytes live inline in the skiplist nodes; the
   value arena only backs oversized spill values. *)
let _touch_value t key =
  let addr = t.value_base + (key / 8 * Page.logical_size) in
  Vm_space.touch_write t.db_proc.Process.space ~addr ~len:64

let put t ~key ~value_bytes =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  Clock.advance clk insert_cpu;
  touch_node t key ~write:true;
  Hashtbl.replace t.table key value_bytes;
  t.batch <- (key, value_bytes) :: t.batch;
  t.wal_pos <- t.wal_pos + 1;
  t.wal_bytes <- t.wal_bytes + value_bytes + 16;
  if t.wal_pos >= t.wal_group_size then begin
    (* Group leader: one synchronous journal append covers the batch. *)
    Api.sls_journal t.grp t.journal (journal_record (List.rev t.batch));
    t.batch <- [];
    t.wal_pos <- 0
  end;
  if t.wal_bytes >= t.wal_limit then begin
    (* WAL full: take a checkpoint and clear the journal (the paper's
       protocol).  This op pays for it — the 99.9th percentile. *)
    if t.batch <> [] then begin
      Api.sls_journal t.grp t.journal (journal_record (List.rev t.batch));
      t.batch <- [];
      t.wal_pos <- 0
    end;
    ignore (Group.checkpoint ~wait_durable:true t.grp);
    Api.sls_journal_truncate t.grp t.journal;
    t.wal_bytes <- 0;
    t.n_checkpoints <- t.n_checkpoints + 1
  end;
  Clock.now clk - t0

let get t ~key =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  Clock.advance clk lookup_cpu;
  touch_node t key ~write:false;
  ignore (Hashtbl.find_opt t.table key);
  Clock.now clk - t0

let read_value_size t ~key = Hashtbl.find_opt t.table key

let recover ~sys =
  (* Restore the checkpointed process, then replay the journal on top —
     the application's restore-time fixup (the "Aurora specific signal
     handler" pattern from section 3). *)
  let machine = sys.Sls.machine in
  let result = Restore.restore ~machine ~store:sys.Sls.store () in
  let group = result.Restore.group in
  let proc =
    match result.Restore.procs with
    | [ p ] -> p
    | _ -> failwith "rocksdb_aurora: expected one process"
  in
  let journal =
    match Api.journal_of_id group 1 with
    | Some j -> j
    | None -> failwith "rocksdb_aurora: journal missing"
  in
  let entries =
    List.map
      (fun (e : Aurora_vm.Vm_map.entry) -> Vm_space.addr_of_entry e)
      (Aurora_vm.Vm_map.entries (Vm_space.map proc.Process.space))
  in
  let node_base, value_base =
    match entries with
    | nb :: vb :: _ -> (nb, vb)
    | _ -> failwith "rocksdb_aurora: unexpected address space"
  in
  let t =
    create_raw ~sys ~nkeys:0 ~wal_limit:(32 * 1024 * 1024) ~wal_group_size:48
      ~journal ~group ~proc ~node_base ~value_base
  in
  (* Rebuild the in-memory index from the restored pages' authoritative
     table... the table itself was process state; in this miniature the
     index is re-driven from the journal replay. *)
  let replayed = ref 0 in
  List.iter
    (fun record ->
      List.iter
        (fun (key, size) ->
          Hashtbl.replace t.table key size;
          incr replayed)
        (parse_record record))
    (Api.sls_journal_recover group journal);
  (t, !replayed)

let checkpoints_triggered t = t.n_checkpoints
