module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page

type persistence = Ephemeral | Wal_synced

(* Memtable insert CPU: skiplist descent + node write. *)
let insert_cpu = 300
let lookup_cpu = 250

(* The WAL goes through the file system: the log data write plus the
   metadata/journal update, each with sync latency. *)
let wal_fs_cpu = 9_000
let wal_device_ops = 2

(* Nodes per page in the memtable arena (keys + skiplist towers). *)
let nodes_per_page = 16

type t = {
  machine : Machine.t;
  db_proc : Process.t;
  node_base : int;
  value_base : int;
  nkeys : int;
  table : (int, int) Hashtbl.t; (* key -> value size *)
  dev : Striped.t;
  persistence : persistence;
  wal_group_size : int;
  mutable wal_pos : int; (* op position within the commit group *)
  mutable wal_syncs : int;
  mutable wal_pending_bytes : int;
  memtable_limit : int;
  mutable memtable_bytes : int;
  mutable l0_files : int;
  mutable compaction_done_at : int;
  mutable n_flushes : int;
  mutable n_compactions : int;
  mutable n_stalls : int;
  mutable dev_off : int;
  compaction_factor : int;
}

let create ~machine ~nkeys ?(memtable_limit = max_int) ?(wal_group_size = 48)
    ?(compaction_factor = 8) persistence =
  let db_proc = Syscall.spawn machine ~name:"rocksdb" in
  let node_pages = (nkeys + nodes_per_page - 1) / nodes_per_page in
  (* Values average a few hundred bytes: ~8 per page. *)
  let value_pages = (nkeys + 7) / 8 in
  let nodes = Syscall.mmap_anon db_proc ~npages:node_pages in
  let values = Syscall.mmap_anon db_proc ~npages:value_pages in
  {
    machine;
    db_proc;
    node_base = Vm_space.addr_of_entry nodes;
    value_base = Vm_space.addr_of_entry values;
    nkeys;
    table = Hashtbl.create (2 * nkeys);
    dev = Striped.create ();
    persistence;
    wal_group_size;
    wal_pos = 0;
    wal_syncs = 0;
    wal_pending_bytes = 0;
    memtable_limit;
    memtable_bytes = 0;
    l0_files = 0;
    compaction_done_at = 0;
    n_flushes = 0;
    n_compactions = 0;
    n_stalls = 0;
    dev_off = 0;
    compaction_factor;
  }

let proc t = t.db_proc

let touch_node t key ~write =
  let addr = t.node_base + (key / nodes_per_page * Page.logical_size) in
  if write then Vm_space.touch_write t.db_proc.Process.space ~addr ~len:64
  else Vm_space.touch_read t.db_proc.Process.space ~addr ~len:64

(* Values of a few hundred bytes live inline in the skiplist nodes; the
   value arena only backs oversized spill values. *)
let _touch_value t key =
  let addr = t.value_base + (key / 8 * Page.logical_size) in
  Vm_space.touch_write t.db_proc.Process.space ~addr ~len:64

(* Group commit: each operation appends its record; the group leader (one
   op in [wal_group_size]) performs the synchronous flush everyone in the
   group waits on.  Returns the extra latency this op observes. *)
let wal_append t ~bytes =
  let clk = t.machine.Machine.clock in
  t.wal_pending_bytes <- t.wal_pending_bytes + bytes;
  t.wal_pos <- t.wal_pos + 1;
  if t.wal_pos >= t.wal_group_size then begin
    t.wal_pos <- 0;
    let pending = t.wal_pending_bytes in
    t.wal_pending_bytes <- 0;
    (* Log data + file-system metadata, both synchronous.  Roughly one
       sync in thirty-two collides with the file system's periodic journal
       commit and waits for it — a real artifact of running a WAL through
       a journaling file system, and part of why the paper's custom WAL
       has the better 99th percentile. *)
    t.wal_syncs <- t.wal_syncs + 1;
    if t.wal_syncs mod 32 = 0 then Clock.advance clk 420_000;
    Clock.advance clk wal_fs_cpu;
    let c =
      Striped.write ~charge:(pending + 4096) t.dev ~now:(Clock.now clk) ~off:t.dev_off
        Bytes.empty
    in
    t.dev_off <- t.dev_off + pending + 4096;
    Clock.advance_to clk (c + (wal_device_ops * Cost.nvme_sync_write_latency));
    0
  end
  else
    (* Non-leader ops ride the previous group's committed state; their
       wait is the average residual until the leader syncs, folded into
       the leader's charge above.  No extra clock advance. *)
    0

let maybe_flush t =
  let clk = t.machine.Machine.clock in
  if t.memtable_bytes >= t.memtable_limit then begin
    (* Flush the memtable to an L0 SSTable, asynchronously. *)
    t.n_flushes <- t.n_flushes + 1;
    ignore
      (Striped.write ~charge:t.memtable_bytes t.dev ~now:(Clock.now clk) Bytes.empty
         ~off:t.dev_off);
    t.dev_off <- t.dev_off + t.memtable_bytes;
    t.memtable_bytes <- 0;
    t.l0_files <- t.l0_files + 1;
    if t.l0_files >= 4 then begin
      (* Compact four L0 files into L1: read + write their bytes. *)
      t.n_compactions <- t.n_compactions + 1;
      t.l0_files <- t.l0_files - 4;
      let bytes = t.compaction_factor * t.memtable_limit in
      let c =
        Striped.write ~charge:bytes t.dev ~now:(Clock.now clk) ~off:t.dev_off Bytes.empty
      in
      t.dev_off <- t.dev_off + bytes;
      t.compaction_done_at <- c
    end;
    (* Writers stall when compaction debt builds up. *)
    if t.compaction_done_at > Clock.now clk + 50_000_000 then begin
      t.n_stalls <- t.n_stalls + 1;
      Clock.advance_to clk t.compaction_done_at
    end
  end

let put t ~key ~value_bytes =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  Clock.advance clk insert_cpu;
  touch_node t key ~write:true;
  Hashtbl.replace t.table key value_bytes;
  t.memtable_bytes <- t.memtable_bytes + value_bytes + 64;
  (match t.persistence with
  | Wal_synced -> ignore (wal_append t ~bytes:(value_bytes + 32))
  | Ephemeral -> ());
  maybe_flush t;
  Clock.now clk - t0

let get t ~key =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  Clock.advance clk lookup_cpu;
  touch_node t key ~write:false;
  ignore (Hashtbl.find_opt t.table key);
  Clock.now clk - t0

let read_value_size t ~key = Hashtbl.find_opt t.table key
let flushes t = t.n_flushes
let compactions t = t.n_compactions
let stalls t = t.n_stalls
