(** A Redis miniature for the checkpointing comparisons (Tables 1 and 7).

    The process holds a configurable resident set in a real mapped region
    plus the kernel-object population of a busy Redis server (client
    sockets, pipes, a kqueue) — the object count is what CRIU's
    process-centric traversal pays for.  {!rdb_save} reproduces Redis' own
    persistence: fork (paying the COW stop) and a child that serializes
    the keyspace to disk. *)

type t

val create :
  machine:Aurora_kern.Machine.t ->
  ?client_connections:int ->
  resident_mib:int ->
  unit ->
  t

val proc : t -> Aurora_kern.Process.t
val resident_pages : t -> int

val write_key : t -> int -> unit
(** Dirty the page holding key [i]. *)

type rdb_breakdown = {
  fork_stop_ns : int;  (** application stopped while fork marks COW *)
  serialize_write_ns : int;  (** child walks the keyspace and writes *)
}

val rdb_save : t -> dev:Aurora_block.Striped.t -> rdb_breakdown
(** BGSAVE: fork + serialize.  The child is reaped before returning. *)
