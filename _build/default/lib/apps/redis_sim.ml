module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Striped = Aurora_block.Striped
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page

type t = {
  rd_proc : Process.t;
  base : int;
  pages : int;
  machine : Machine.t;
}

let create ~machine ?(client_connections = 240) ~resident_mib () =
  let proc = Syscall.spawn machine ~name:"redis-server" in
  let pages = resident_mib * 1024 * 1024 / Page.logical_size in
  let arena = Syscall.mmap_anon proc ~npages:pages in
  let base = Vm_space.addr_of_entry arena in
  (* The whole keyspace is resident. *)
  Vm_space.touch_write proc.Process.space ~addr:base ~len:(pages * Page.logical_size);
  (* Kernel-object population of a serving Redis: a listener, client
     connections, an event kqueue, and the self-pipe. *)
  let listener = Syscall.socket machine proc Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  Syscall.bind proc ~fd:listener { Aurora_kern.Socket.host = "0.0.0.0"; port = 6379 };
  Syscall.listen proc ~fd:listener;
  for _ = 1 to client_connections do
    ignore (Syscall.socket machine proc Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp)
  done;
  ignore (Syscall.kqueue machine proc);
  ignore (Syscall.pipe machine proc);
  { rd_proc = proc; base; pages; machine }

let proc t = t.rd_proc
let resident_pages t = t.pages

let write_key t i =
  let addr = t.base + (i mod t.pages * Page.logical_size) in
  Vm_space.touch_write t.rd_proc.Process.space ~addr ~len:64

type rdb_breakdown = { fork_stop_ns : int; serialize_write_ns : int }

let rdb_save t ~dev =
  let clk = t.machine.Machine.clock in
  let t0 = Clock.now clk in
  (* fork: the parent stalls while every writable page is marked COW and
     the page tables are duplicated. *)
  let child = Syscall.fork t.machine t.rd_proc in
  let fork_stop_ns = Clock.now clk - t0 in
  (* The child walks the keyspace, serializes key-value pairs and writes
     the .rdb file; serialization is the bottleneck (Table 7: the write
     is 3x slower than Aurora's despite writing only the data). *)
  let bytes = t.pages * Page.logical_size in
  let serialize_ns = Cost.transfer_time ~bandwidth:Cost.rdb_serialize_bandwidth bytes in
  Clock.advance clk serialize_ns;
  ignore (Striped.write ~charge:bytes dev ~now:(Clock.now clk) ~off:0 Bytes.empty);
  Syscall.exit t.machine child ~code:0;
  ignore (Syscall.waitpid t.machine t.rd_proc);
  { fork_stop_ns; serialize_write_ns = serialize_ns }
