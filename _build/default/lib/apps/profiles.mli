(** Synthetic process profiles for the Table 6 applications.

    Each profile captures what the paper says drives checkpoint cost: the
    resident set size and the {e complexity of the OS state} — number of
    address-space objects, file descriptors, threads, and processes
    ("vim and pillow have small memory footprints, but complex OS state
    including hundreds of address space objects").  {!build} constructs
    real processes with that shape on the simulated kernel, so the
    checkpoint and restore costs come out of the ordinary SLS paths. *)

type profile = {
  app_name : string;
  mem_mib : int;
  nprocs : int;
  threads_per_proc : int;
  vm_entries : int;  (** per process *)
  fds : int;  (** per process: a mix of files, sockets and pipes *)
}

val firefox : profile
val mosh : profile
val pillow : profile
val tomcat : profile
val vim : profile
val all : profile list

val build :
  Aurora_core.Sls.system -> profile -> Aurora_kern.Process.t list
(** Create the process tree, map and touch the memory, open the
    descriptors. *)
