(** The Memcached client-server experiment (Figures 4 and 5).

    A discrete-event simulation on the machine's clock: request arrivals
    (closed-loop connections for the max-throughput experiment, an open
    Poisson process for the fixed-load one), a worker-pool server resource,
    and — when a checkpoint period is set — real Aurora checkpoints firing
    on schedule.  Checkpoint stop time blocks the server; the post-shadow
    refault costs land in the service time of the requests that touch the
    downgraded pages, because requests execute against the real item
    arena. *)

type load =
  | Closed_loop of int  (** concurrent connections (mutilate: 4x12x12/2) *)
  | Open_poisson of float  (** offered ops/s *)

type config = {
  period_ns : int option;  (** None: baseline without persistence *)
  load : load;
  duration_ns : int;
  nkeys : int;
  seed : int;
  ext_sync : bool;
      (** withhold SET responses until the covering checkpoint is durable
          (external synchrony, paper section 3); GET responses go out
          immediately, the [sls_fdctl] optimization for read-only traffic *)
}

type outcome = {
  throughput_ops : float;
  avg_latency_ns : float;
  p95_latency_ns : float;
  completed : int;
  checkpoints : int;
  avg_stop_ns : float;
  avg_set_latency_ns : float;  (** SETs only; carries the ext-sync wait *)
  avg_get_latency_ns : float;
}

val run : config -> outcome
