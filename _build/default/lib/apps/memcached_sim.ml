module Clock = Aurora_sim.Clock
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page

(* Items are a few hundred bytes: sixteen per page. *)
let items_per_page = 16
let base_service_ns = 850

type t = {
  mc_proc : Process.t;
  base : int;
  nkeys : int;
  pages : int;
}

let create ~machine ~nkeys =
  let proc = Syscall.spawn machine ~name:"memcached" in
  let pages = (nkeys + items_per_page - 1) / items_per_page in
  let arena = Syscall.mmap_anon proc ~npages:pages in
  (* A listening socket and a kqueue, as the real server would hold. *)
  let sock = Syscall.socket machine proc Aurora_kern.Socket.Inet Aurora_kern.Socket.Tcp in
  Syscall.bind proc ~fd:sock { Aurora_kern.Socket.host = "0.0.0.0"; port = 11211 };
  Syscall.listen proc ~fd:sock;
  ignore (Syscall.kqueue machine proc);
  { mc_proc = proc; base = Vm_space.addr_of_entry arena; nkeys; pages }

let proc t = t.mc_proc

let item_addr t key =
  assert (key >= 0 && key < t.nkeys);
  let page = key / items_per_page in
  let slot = key mod items_per_page in
  t.base + (page * Page.logical_size) + (slot * (Page.logical_size / items_per_page))

let get t key =
  let addr = item_addr t key in
  ignore (Vm_space.read_byte t.mc_proc.Process.space ~addr)

let set t key ~value_bytes =
  let addr = item_addr t key in
  (* An item update dirties its page; large values spill to the next
     slot's page boundary at most once. *)
  let len = min value_bytes (Page.logical_size / items_per_page) in
  Vm_space.touch_write t.mc_proc.Process.space ~addr ~len:(max 1 len)

let arena_pages t = t.pages
