lib/apps/memcached_sim.ml: Aurora_kern Aurora_sim Aurora_vm
