lib/apps/profiles.mli: Aurora_core Aurora_kern
