lib/apps/rocksdb_bench.mli:
