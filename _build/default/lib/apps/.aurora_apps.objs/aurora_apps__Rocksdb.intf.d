lib/apps/rocksdb.mli: Aurora_kern
