lib/apps/profiles.ml: Aurora_core Aurora_kern Aurora_vm List Printf
