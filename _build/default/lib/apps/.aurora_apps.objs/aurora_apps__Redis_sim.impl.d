lib/apps/redis_sim.ml: Aurora_block Aurora_kern Aurora_sim Aurora_vm Bytes
