lib/apps/rocksdb_aurora.ml: Aurora_core Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Bytes Hashtbl List
