lib/apps/memcached_bench.mli:
