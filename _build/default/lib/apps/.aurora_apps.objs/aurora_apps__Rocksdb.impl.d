lib/apps/rocksdb.ml: Aurora_block Aurora_kern Aurora_sim Aurora_vm Bytes Hashtbl
