lib/apps/redis_sim.mli: Aurora_block Aurora_kern
