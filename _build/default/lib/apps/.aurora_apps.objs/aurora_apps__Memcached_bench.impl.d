lib/apps/memcached_bench.ml: Aurora_core Aurora_kern Aurora_sim Aurora_util Aurora_workloads Memcached_sim
