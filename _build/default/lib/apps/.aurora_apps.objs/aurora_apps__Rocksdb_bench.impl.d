lib/apps/rocksdb_bench.ml: Array Aurora_core Aurora_kern Aurora_sim Aurora_util Aurora_workloads Rocksdb Rocksdb_aurora
