lib/apps/memcached_sim.mli: Aurora_kern
