lib/apps/rocksdb_aurora.mli: Aurora_core Aurora_kern
