(** A RocksDB miniature: memtable + write-ahead log + LSM tree.

    The three structures the paper names (section 9.6) are all here: a
    memtable whose nodes live in real mapped pages (so Aurora's transparent
    mode sees real dirty sets), a group-committed WAL going through the
    file-system write path (data plus metadata, two device operations per
    sync), and an LSM tree — memtable flushes to L0 SSTables and a
    background compaction that consumes device bandwidth and stalls
    writers when it falls behind.

    For the Figure 6 configurations the memtable is sized to hold the
    whole database (the paper does the same to keep reads in memory), so
    flushes never fire during measurement; a small limit exercises the LSM
    machinery in tests and the ablation bench. *)

type persistence = Ephemeral | Wal_synced

type t

val create :
  machine:Aurora_kern.Machine.t ->
  nkeys:int ->
  ?memtable_limit:int ->
  ?wal_group_size:int ->
  ?compaction_factor:int ->
  persistence ->
  t
(** [compaction_factor] scales the bytes a compaction rewrites relative
    to the memtable (default 8; deep LSM trees reach 20-30x write
    amplification). *)

val proc : t -> Aurora_kern.Process.t

val put : t -> key:int -> value_bytes:int -> int
(** Insert/update; returns the operation's latency in ns (clock advance
    plus commit wait). *)

val get : t -> key:int -> int
(** Point lookup (served from the memtable); returns latency in ns. *)

val read_value_size : t -> key:int -> int option
(** The stored value size, for correctness checks. *)

val flushes : t -> int
val compactions : t -> int
val stalls : t -> int
