(** The RocksDB comparison (Figure 6): throughput and write tail latency
    for the four configurations of section 9.6, under the Facebook
    Prefix_dist workload.

    "No Sync" configurations do not persist writes before acknowledging
    ([Cfg_none], [Cfg_aurora_100hz]); "Sync" configurations do
    ([Cfg_wal], [Cfg_aurora_wal]). *)

type config =
  | Cfg_none  (** unmodified RocksDB, no persistence *)
  | Cfg_aurora_100hz  (** unmodified RocksDB + transparent Aurora at 10 ms *)
  | Cfg_wal  (** unmodified RocksDB with its synchronous WAL *)
  | Cfg_aurora_wal  (** the customized RocksDB on the Aurora API *)

val config_label : config -> string
val config_is_sync : config -> bool

type outcome = {
  throughput_ops : float;
  p99_write_ns : float;
  p999_write_ns : float;
  ops_run : int;
}

val run : config -> ops:int -> nkeys:int -> seed:int -> outcome
