(** The Aurora-customized RocksDB (paper section 9.6).

    The modification the paper describes, reproduced structurally: the
    log-structured merge tree is {e deleted} — Aurora persists the
    memtable itself — and RocksDB's WAL is replaced by an [sls_journal]
    region updated with group-committed synchronous appends.  When the
    journal fills, the application triggers a full Aurora checkpoint and
    truncates the journal (recovery therefore replays at most one
    journal's worth of operations on top of the last checkpoint).

    The paper replaced 81k SLOC of persistence code with 109 lines; this
    module is correspondingly a fraction of {!Rocksdb}'s size, with the
    same write-consistency guarantee as its WAL mode. *)

type t

val create :
  sys:Aurora_core.Sls.system ->
  nkeys:int ->
  ?wal_limit:int ->
  ?wal_group_size:int ->
  unit ->
  t
(** [wal_limit] defaults to 32 MiB — checkpoints amortize over tens of
    thousands of writes, with the post-checkpoint refault cost spread
    correspondingly thin. *)

val group : t -> Aurora_core.Group.t
val proc : t -> Aurora_kern.Process.t

val put : t -> key:int -> value_bytes:int -> int
(** Durable on return (same guarantee as the vanilla WAL); returns
    latency in ns.  Puts that fill the journal trigger the checkpoint and
    pay for it — the paper's 99.9th-percentile caveat. *)

val get : t -> key:int -> int
val read_value_size : t -> key:int -> int option

val recover : sys:Aurora_core.Sls.system -> t * int
(** After a crash: restore the last checkpoint and replay the journal;
    returns the rebuilt instance and the number of replayed records. *)

val checkpoints_triggered : t -> int
