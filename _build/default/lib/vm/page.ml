let logical_size = 4096
let payload_size = 64

type t = { pid : int; mutable data : bytes }

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let alloc_sized ~payload =
  assert (payload > 0 && payload <= logical_size);
  { pid = fresh_id (); data = Bytes.make payload '\000' }

let alloc () = alloc_sized ~payload:payload_size
let alloc_full () = alloc_sized ~payload:logical_size

let alloc_init f =
  { pid = fresh_id (); data = Bytes.init payload_size f }

let id t = t.pid
let payload_length t = Bytes.length t.data
let copy t = { pid = fresh_id (); data = Bytes.copy t.data }

let fold t off =
  assert (off >= 0 && off < logical_size);
  off mod Bytes.length t.data

let get t off = Bytes.get t.data (fold t off)
let set t off c = Bytes.set t.data (fold t off) c
let blit_payload t = Bytes.copy t.data
let load_payload t b = t.data <- Bytes.copy b
let equal_content a b = Bytes.equal a.data b.data
let fingerprint t = Hashtbl.hash t.data
