module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost

type kind = Anonymous | Vnode_backed of int | Device_backed of string

type t = {
  oid : int;
  obj_kind : kind;
  pages : (int, Page.t) Hashtbl.t;
  mutable shadow_parent : t option;
  mutable refs : int;
  mutable obj_pager : (int -> bytes option) option;
}

let next_id = ref 0

let create obj_kind =
  incr next_id;
  {
    oid = !next_id;
    obj_kind;
    pages = Hashtbl.create 64;
    shadow_parent = None;
    refs = 1;
    obj_pager = None;
  }

let id t = t.oid
let kind t = t.obj_kind
let parent t = t.shadow_parent
let ref_count t = t.refs
let ref_ t = t.refs <- t.refs + 1

let unref t =
  assert (t.refs > 0);
  t.refs <- t.refs - 1

let resident_pages t = Hashtbl.length t.pages

let rec chain_length t =
  match t.shadow_parent with None -> 1 | Some p -> 1 + chain_length p

let rec chain_pages t =
  resident_pages t
  + (match t.shadow_parent with None -> 0 | Some p -> chain_pages p)

let insert_page t idx page = Hashtbl.replace t.pages idx page
let remove_page t idx = Hashtbl.remove t.pages idx
let set_pager t p = t.obj_pager <- p
let pager t = t.obj_pager
let find_local t idx = Hashtbl.find_opt t.pages idx

let lookup ~clock t idx =
  let rec walk obj =
    match Hashtbl.find_opt obj.pages idx with
    | Some page -> Some (page, obj)
    | None -> (
        match obj.shadow_parent with
        | None -> None
        | Some p ->
            Clock.advance clock Cost.shadow_chain_hop;
            walk p)
  in
  walk t

let iter_local t f = Hashtbl.iter f t.pages

let shadow ~clock t =
  Clock.advance clock Cost.shadow_object_setup;
  incr next_id;
  let s =
    {
      oid = !next_id;
      obj_kind = Anonymous;
      pages = Hashtbl.create 64;
      shadow_parent = Some t;
      refs = t.refs;
      obj_pager = None;
    }
  in
  (* The shadow takes over the mappings' references; the parent keeps a
     single reference from the shadow itself. *)
  t.refs <- 1;
  s

let set_parent t p = t.shadow_parent <- p

type collapse_direction = Stock_freebsd | Aurora_reverse

let last_collapse_moves = ref 0
let pages_moved_by_last_collapse () = !last_collapse_moves

let collapse ~clock ~direction shadow_obj =
  let parent_obj =
    match shadow_obj.shadow_parent with
    | Some p -> p
    | None -> invalid_arg "Vm_object.collapse: object has no parent"
  in
  let moves = ref 0 in
  let survivor =
    match direction with
    | Stock_freebsd ->
        (* Insert the parent's pages into the shadow unless the shadow
           already has a private version; the shadow survives. *)
        Hashtbl.iter
          (fun idx page ->
            if not (Hashtbl.mem shadow_obj.pages idx) then begin
              Hashtbl.replace shadow_obj.pages idx page;
              incr moves
            end)
          parent_obj.pages;
        shadow_obj.shadow_parent <- parent_obj.shadow_parent;
        shadow_obj
    | Aurora_reverse ->
        (* Move the shadow's pages down into the parent (the shadow's
           version wins); the parent survives. *)
        Hashtbl.iter
          (fun idx page ->
            Hashtbl.replace parent_obj.pages idx page;
            incr moves)
          shadow_obj.pages;
        Hashtbl.reset shadow_obj.pages;
        parent_obj.refs <- shadow_obj.refs;
        parent_obj
  in
  last_collapse_moves := !moves;
  Clock.advance clock (!moves * Cost.collapse_page_move);
  survivor
