(** Mach-style VM objects with shadow chains.

    A VM object is a mappable collection of pages (indexed by page number
    within the object).  Copy-on-write is implemented by {e shadowing}: a
    shadow object sits above its parent, holds the private copies of
    modified pages, and defers to the parent for everything else.  This is
    the structure the paper's system shadowing manipulates (section 6), so
    both collapse directions are implemented:

    - [Stock_freebsd]: the parent's pages are inserted into the shadow;
      cost scales with the parent's resident pages (the common case is a
      nearly-full parent under a nearly-empty shadow).
    - [Aurora_reverse]: the shadow's pages are moved down into the parent;
      cost scales with the shadow's pages, which system shadowing keeps
      small because shadows live for one checkpoint period.

    Operations that have a modeled hardware cost take a [clock]. *)

type kind =
  | Anonymous
  | Vnode_backed of int  (** inode number; COW handled by the Aurora FS *)
  | Device_backed of string  (** e.g. "hpet0"; mapped read-only *)

type t

val create : kind -> t
val id : t -> int
val kind : t -> kind

val parent : t -> t option
val ref_count : t -> int
val ref_ : t -> unit
val unref : t -> unit

val resident_pages : t -> int
(** Pages resident in this object only (not the chain). *)

val chain_length : t -> int
(** 1 for an object with no parent. *)

val chain_pages : t -> int
(** Total resident pages along the whole chain. *)

val insert_page : t -> int -> Page.t -> unit
(** [insert_page obj idx page] makes [page] the object's page [idx],
    replacing any previous one. *)

val remove_page : t -> int -> unit
(** Drop a resident page (swap-out: the content must already be durable
    elsewhere — the pager brings it back on demand). *)

val set_pager : t -> (int -> bytes option) option -> unit
(** Attach a pager: when a fault misses the whole shadow chain, the
    chain's pagers are consulted for the payload (backed by the object
    store).  This is the unified swap / lazy-restore data path of paper
    section 6. *)

val pager : t -> (int -> bytes option) option

val find_local : t -> int -> Page.t option
(** Page [idx] in this object only. *)

val lookup : clock:Aurora_sim.Clock.t -> t -> int -> (Page.t * t) option
(** Walk the shadow chain for page [idx]; charges one
    {!Aurora_sim.Cost.shadow_chain_hop} per level descended.  Returns the
    page and the object it resides in. *)

val iter_local : t -> (int -> Page.t -> unit) -> unit
(** Iterate this object's resident pages (not the chain). *)

val shadow : clock:Aurora_sim.Clock.t -> t -> t
(** Create a shadow above [t]: a fresh anonymous object whose parent is
    [t].  Transfers the caller's reference: the mapping that used [t] now
    uses the shadow. *)

type collapse_direction = Stock_freebsd | Aurora_reverse

val collapse : clock:Aurora_sim.Clock.t -> direction:collapse_direction -> t -> t
(** [collapse ~clock ~direction shadow] merges [shadow] with its parent and
    returns the surviving object (the shadow under [Stock_freebsd], the
    parent under [Aurora_reverse]).  The shadow's version of a page wins in
    both directions.  Raises [Invalid_argument] if [shadow] has no parent.
    The caller re-points mappings at the survivor. *)

val pages_moved_by_last_collapse : unit -> int
(** Instrumentation for the collapse-direction ablation. *)

val set_parent : t -> t option -> unit
(** Re-point the shadow parent.  The orchestrator uses this after a
    reverse collapse to re-attach the surviving parent to the objects that
    shadowed the collapsed one. *)
