lib/vm/pmap.ml: Aurora_sim Hashtbl Page
