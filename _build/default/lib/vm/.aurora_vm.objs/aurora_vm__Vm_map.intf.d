lib/vm/vm_map.mli: Vm_object
