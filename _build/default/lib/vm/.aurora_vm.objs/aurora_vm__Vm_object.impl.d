lib/vm/vm_object.ml: Aurora_sim Hashtbl Page
