lib/vm/pmap.mli: Aurora_sim Page
