lib/vm/vm_object.mli: Aurora_sim Page
