lib/vm/vm_map.ml: List Vm_object
