lib/vm/vm_space.mli: Aurora_sim Pmap Vm_map Vm_object
