lib/vm/vm_space.ml: Aurora_sim Bytes Hashtbl List Page Pmap Printf String Vm_map Vm_object
