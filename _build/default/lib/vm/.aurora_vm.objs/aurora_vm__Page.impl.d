lib/vm/page.ml: Bytes Hashtbl
