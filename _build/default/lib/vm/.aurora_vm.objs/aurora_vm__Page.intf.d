lib/vm/page.mli:
