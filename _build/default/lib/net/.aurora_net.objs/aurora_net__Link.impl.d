lib/net/link.ml: Aurora_sim
