lib/net/link.mli:
