module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource

type t = { wire : Resource.t }

let create ?(name = "10gbe") () = { wire = Resource.create ~name }

let delivery_time t ~now ~bytes =
  let serialize = Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes in
  let sent = Resource.submit t.wire ~now ~duration:serialize in
  sent + Cost.net_one_way_latency

let rtt ~bytes =
  (2 * Cost.net_one_way_latency)
  + Cost.transfer_time ~bandwidth:Cost.net_bandwidth bytes
  + (2 * Cost.net_per_message_cpu)

let reset t = Resource.reset t.wire
