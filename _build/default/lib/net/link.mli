(** A 10 GbE point-to-point link (client machines to the server under
    test, as in the paper's client-server benchmarks).

    Messages pay a one-way latency plus serialization at link bandwidth;
    the link queues (it is a {!Aurora_sim.Resource}), so saturating
    offered load produces realistic queueing delay. *)

type t

val create : ?name:string -> unit -> t

val delivery_time : t -> now:int -> bytes:int -> int
(** When a message of [bytes] sent at [now] arrives at the other end. *)

val rtt : bytes:int -> int
(** Unloaded round-trip estimate for a request/response pair of the given
    total size. *)

val reset : t -> unit
