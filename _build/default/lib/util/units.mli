(** Size and time units.

    Virtual time throughout the repository is an [int] count of nanoseconds;
    sizes are [int] counts of bytes.  This module holds the conversion
    constants and human-readable formatters used by the CLI and the benchmark
    harness. *)

val kib : int
val mib : int
val gib : int

val page_size : int
(** 4096: the page size of the simulated machine. *)

val pages_of_bytes : int -> int
(** Number of pages covering [bytes], rounding up. *)

val us : int
(** Nanoseconds in a microsecond. *)

val ms : int
(** Nanoseconds in a millisecond. *)

val sec : int
(** Nanoseconds in a second. *)

val pp_bytes : Format.formatter -> int -> unit
(** "4 KiB", "1.5 MiB", "3 GiB", ... *)

val pp_ns : Format.formatter -> int -> unit
(** "1.7 µs", "4.0 ms", "1.2 s", ... chooses the natural unit. *)

val bytes_to_string : int -> string
val ns_to_string : int -> string
