(** Aligned plain-text tables for benchmark output.

    The benchmark harness prints each reproduced paper table and figure as an
    aligned text table; this module does the column-width bookkeeping. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
(** Full table including header, rule, and rows. *)

val print : t -> unit
(** [render] followed by a newline on stdout. *)
