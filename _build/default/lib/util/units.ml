let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let page_size = 4096
let pages_of_bytes bytes = (bytes + page_size - 1) / page_size
let us = 1_000
let ms = 1_000_000
let sec = 1_000_000_000

let pp_scaled fmt value steps unit_names =
  (* Find the largest unit not exceeding the value and print with a precision
     that keeps three significant-ish digits. *)
  let rec pick i =
    if i + 1 < Array.length steps && value >= steps.(i + 1) then pick (i + 1)
    else i
  in
  let i = pick 0 in
  let scaled = float_of_int value /. float_of_int steps.(i) in
  if Float.is_integer scaled && scaled < 1000.0 then
    Format.fprintf fmt "%.0f %s" scaled unit_names.(i)
  else if scaled >= 100.0 then Format.fprintf fmt "%.0f %s" scaled unit_names.(i)
  else if scaled >= 10.0 then Format.fprintf fmt "%.1f %s" scaled unit_names.(i)
  else Format.fprintf fmt "%.2f %s" scaled unit_names.(i)

let pp_bytes fmt b =
  pp_scaled fmt b [| 1; kib; mib; gib |] [| "B"; "KiB"; "MiB"; "GiB" |]

let pp_ns fmt ns =
  pp_scaled fmt ns [| 1; us; ms; sec |] [| "ns"; "\xc2\xb5s"; "ms"; "s" |]

let bytes_to_string b = Format.asprintf "%a" pp_bytes b
let ns_to_string ns = Format.asprintf "%a" pp_ns ns
