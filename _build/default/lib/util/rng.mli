(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    simulations and tests are reproducible from a seed.  The generator is
    splitmix64, which is small, fast, and has well-understood statistical
    behaviour. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for Poisson
    arrival processes. *)
