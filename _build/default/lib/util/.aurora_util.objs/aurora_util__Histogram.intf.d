lib/util/histogram.mli:
