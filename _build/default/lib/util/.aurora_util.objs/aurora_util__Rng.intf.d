lib/util/rng.mli:
