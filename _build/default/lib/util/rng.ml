type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let x = Int64.to_int (bits64 t) land max_int in
  x mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, as in the standard doubles-from-int64 recipe. *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
