type row = Cells of string list | Separator

type t = { header : string list; mutable rows : row list }

let create ~header = { header; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

(* Column width = max over the header and all rows; cells are left-aligned
   except numeric-looking cells, which are right-aligned. *)

let numericish s =
  String.length s > 0
  &&
  match s.[0] with
  | '0' .. '9' | '-' | '+' | '.' -> true
  | _ -> false

let widths t rows =
  let ncols =
    List.fold_left
      (fun acc r ->
        match r with Cells c -> max acc (List.length c) | Separator -> acc)
      (List.length t.header)
      rows
  in
  let w = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  w

let pad width s =
  let n = width - String.length s in
  if n <= 0 then s
  else if numericish s then String.make n ' ' ^ s
  else s ^ String.make n ' '

let render t =
  let rows = List.rev t.rows in
  let w = widths t rows in
  let buf = Buffer.create 256 in
  let emit cells =
    let cells = Array.of_list cells in
    for i = 0 to Array.length w - 1 do
      let c = if i < Array.length cells then cells.(i) else "" in
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad w.(i) c)
    done;
    (* Trim trailing spaces so the output diffs cleanly. *)
    let line = Buffer.contents buf in
    Buffer.clear buf;
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    String.sub line 0 !len
  in
  let total = Array.fold_left ( + ) 0 w + (2 * (Array.length w - 1)) in
  let rule = String.make (max 1 total) '-' in
  let out = Buffer.create 1024 in
  Buffer.add_string out (emit t.header);
  Buffer.add_char out '\n';
  Buffer.add_string out rule;
  Buffer.add_char out '\n';
  List.iter
    (fun r ->
      (match r with
      | Cells c -> Buffer.add_string out (emit c)
      | Separator -> Buffer.add_string out rule);
      Buffer.add_char out '\n')
    rows;
  Buffer.contents out

let print t = print_string (render t)
