(** Sample accumulation and percentile reporting.

    Used by the benchmark harness for latency distributions and by tests for
    statistical assertions.  Samples are stored exactly (growable array), so
    percentiles are exact order statistics rather than bucket approximations;
    the workloads in this repository produce at most a few million samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val clear : t -> unit

val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100]; nearest-rank order statistic.
    Returns 0 when empty. *)

val merge : t -> t -> unit
(** [merge dst src] adds all samples from [src] into [dst]. *)
