lib/objstore/store.mli: Aurora_block Aurora_sim
