lib/objstore/wire.mli:
