lib/objstore/wire.ml: Buffer Bytes Int32 Int64 List Printf String
