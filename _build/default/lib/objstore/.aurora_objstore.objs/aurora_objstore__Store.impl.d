lib/objstore/store.ml: Aurora_block Aurora_sim Bytes Hashtbl List Option Printf Wire
