module Clock = Aurora_sim.Clock
module Cost = Aurora_sim.Cost
module Resource = Aurora_sim.Resource
module Striped = Aurora_block.Striped

exception Corrupt_store of string

let block_size = 4096
(* 250 entries x 16 bytes + header fits one 4 KiB block. *)
let leaf_span = 250
let magic = "AURSTORE"
let superblock_block = 0

(* In-memory view of one committed object version.  [leaves] maps leaf
   index -> leaf block; [own_blocks] are the blocks written for this
   version (records + leaves + fresh data blocks), used by pruning. *)
type version = {
  v_kind : string;
  v_meta : string;
  v_block : int; (* first block of the serialized version record *)
  v_leaves : (int * int) list;
  v_own_blocks : int list;
}

type epoch_info = {
  e_epoch : int;
  e_record_block : int;
  e_table : (int, version) Hashtbl.t; (* oid -> version *)
}

type staged = {
  mutable s_kind : string;
  mutable s_meta : string;
  mutable s_pages : (int * bytes) list; (* newest first *)
}

type journal = {
  j_id : int;
  j_start : int; (* first block *)
  j_blocks : int;
  mutable j_head : int; (* append offset in bytes within the journal *)
  mutable j_gen : int;
      (* truncation generation: records from earlier generations that
         survive beyond the new head are stale and must not be replayed *)
}

type t = {
  dev : Striped.t;
  clk : Clock.t;
  jqueue : Resource.t; (* serializes synchronous journal appends *)
  mutable next_oid : int;
  mutable next_block : int;
  mutable free_list : int list; (* single reusable blocks *)
  mutable freed : int;
  refcounts : (int, int) Hashtbl.t; (* data block -> referencing leaves *)
  mutable epochs : epoch_info list; (* oldest first *)
  mutable current_epoch : int;
  mutable staging : (int, staged) Hashtbl.t option;
  mutable staging_epoch : int;
  mutable data_done : int; (* completion time of staged data writes *)
  mutable durable : int; (* completion time of the last superblock write *)
  mutable journals : journal list;
  mutable oldest_retained : int; (* chain-walk bound after pruning; 0 = all *)
}

(* Block allocation -------------------------------------------------------- *)

let alloc_block t =
  match t.free_list with
  | b :: rest ->
      t.free_list <- rest;
      b
  | [] ->
      let b = t.next_block in
      t.next_block <- t.next_block + 1;
      b

let alloc_contiguous t n =
  let b = t.next_block in
  t.next_block <- t.next_block + n;
  b

let free_block t b =
  t.free_list <- b :: t.free_list;
  t.freed <- t.freed + 1

let off_of_block b = b * block_size

(* Superblock --------------------------------------------------------------- *)

let write_superblock t ~now ~last_epoch ~record_block =
  let w = Wire.writer () in
  Wire.str w magic;
  Wire.u64 w last_epoch;
  Wire.u64 w record_block;
  Wire.u64 w t.next_block;
  Wire.u64 w t.next_oid;
  Wire.u64 w t.oldest_retained;
  Wire.list w
    (fun j ->
      Wire.u64 w j.j_id;
      Wire.u64 w j.j_start;
      Wire.u64 w j.j_blocks;
      Wire.u64 w j.j_gen)
    t.journals;
  Striped.write t.dev ~now ~off:(off_of_block superblock_block) (Wire.contents w)

(* Version records ----------------------------------------------------------- *)

let serialize_version ~oid ~epoch v =
  let w = Wire.writer () in
  Wire.u8 w 0xA2;
  Wire.u64 w oid;
  Wire.u64 w epoch;
  Wire.str w v.v_kind;
  Wire.str w v.v_meta;
  Wire.list w
    (fun (leaf_idx, blk) ->
      Wire.u32 w leaf_idx;
      Wire.u64 w blk)
    v.v_leaves;
  Wire.contents w

let parse_version data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA2 then raise (Corrupt_store "bad version magic");
  let oid = Wire.ru64 r in
  let _epoch = Wire.ru64 r in
  let kind = Wire.rstr r in
  let meta = Wire.rstr r in
  let leaves =
    Wire.rlist r (fun r ->
        let leaf_idx = Wire.ru32 r in
        let blk = Wire.ru64 r in
        (leaf_idx, blk))
  in
  (oid, kind, meta, leaves)

(* Leaf blocks: a leaf covers page indices [k*leaf_span, (k+1)*leaf_span) and
   stores (index, data block) pairs for the resident ones. *)

(* Leaf entries are (page index, data block, payload length): payloads are
   variable-sized (compact for anonymous memory, full for file pages). *)
let serialize_leaf entries =
  let w = Wire.writer () in
  Wire.u8 w 0xA3;
  Wire.list w
    (fun (idx, blk, len) ->
      Wire.u32 w idx;
      Wire.u64 w blk;
      Wire.u32 w len)
    entries;
  Wire.contents w

let parse_leaf data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA3 then raise (Corrupt_store "bad leaf magic");
  Wire.rlist r (fun r ->
      let idx = Wire.ru32 r in
      let blk = Wire.ru64 r in
      let len = Wire.ru32 r in
      (idx, blk, len))

let read_block_nocharge t blk = Striped.read_nocharge t.dev ~off:(off_of_block blk) ~len:block_size

let read_blocks t ~blk ~nblocks =
  Striped.read t.dev ~clock:t.clk ~off:(off_of_block blk) ~len:(nblocks * block_size)

(* Lifecycle ------------------------------------------------------------------ *)

let fresh dev clk =
  {
    dev;
    clk;
    jqueue = Resource.create ~name:"journal";
    next_oid = 0;
    next_block = 1;
    free_list = [];
    freed = 0;
    refcounts = Hashtbl.create 4096;
    epochs = [];
    current_epoch = 0;
    staging = None;
    staging_epoch = 0;
    data_done = 0;
    durable = 0;
    journals = [];
    oldest_retained = 0;
  }

let format ~dev ~clock =
  let t = fresh dev clock in
  let c = write_superblock t ~now:(Clock.now clock) ~last_epoch:0 ~record_block:0 in
  Clock.advance_to clock c;
  Striped.settle dev ~clock;
  t

let clock t = t.clk
let device t = t.dev

let alloc_oid t =
  t.next_oid <- t.next_oid + 1;
  t.next_oid

let reserve_oids t ~upto = if upto > t.next_oid then t.next_oid <- upto

(* Checkpoint records ----------------------------------------------------------- *)

let serialize_record ~epoch ~prev_block table =
  let w = Wire.writer () in
  Wire.u8 w 0xA1;
  Wire.u64 w epoch;
  Wire.u64 w prev_block;
  Wire.list w
    (fun (oid, vblock) ->
      Wire.u64 w oid;
      Wire.u64 w vblock)
    table;
  Wire.contents w

let parse_record data =
  let r = Wire.reader data in
  if Wire.ru8 r <> 0xA1 then raise (Corrupt_store "bad record magic");
  let epoch = Wire.ru64 r in
  let prev = Wire.ru64 r in
  let table =
    Wire.rlist r (fun r ->
        let oid = Wire.ru64 r in
        let vblock = Wire.ru64 r in
        (oid, vblock))
  in
  (epoch, prev, table)

let blocks_of_len len = max 1 ((len + block_size - 1) / block_size)

(* Write a variable-length record into freshly allocated contiguous blocks;
   returns (first block, completion time, blocks used). *)
let write_record t ~now data =
  let n = blocks_of_len (Bytes.length data) in
  let blk = if n = 1 then alloc_block t else alloc_contiguous t n in
  let c = Striped.write t.dev ~now ~off:(off_of_block blk) data in
  (blk, c, List.init n (fun i -> blk + i))

let last_epoch_info t =
  match List.rev t.epochs with [] -> None | e :: _ -> Some e

let begin_checkpoint t =
  if t.staging <> None then invalid_arg "Store.begin_checkpoint: already staging";
  (* Housekeeping: fold already-durable writes into the committed device
     state so the in-flight lists stay short on long runs. *)
  Striped.apply_durable t.dev ~now:(Clock.now t.clk);
  t.current_epoch <- t.current_epoch + 1;
  t.staging <- Some (Hashtbl.create 64);
  t.staging_epoch <- t.current_epoch;
  t.data_done <- Clock.now t.clk;
  t.current_epoch

let staging_exn t =
  match t.staging with
  | Some s -> s
  | None -> invalid_arg "Store: no checkpoint in progress"

let staged_for t oid =
  let s = staging_exn t in
  match Hashtbl.find_opt s oid with
  | Some st -> st
  | None ->
      let st = { s_kind = ""; s_meta = ""; s_pages = [] } in
      Hashtbl.replace s oid st;
      st

let put_object t ~oid ~kind ~meta =
  let st = staged_for t oid in
  st.s_kind <- kind;
  st.s_meta <- meta

let put_pages t ~oid pages =
  let st = staged_for t oid in
  st.s_pages <- List.rev_append pages st.s_pages

(* Merge staged dirty pages into the previous version's leaves, writing new
   data blocks for dirty pages and rewriting only the touched leaves. *)
let build_version t ~now ~prev st =
  let own = ref [] in
  let completion = ref now in
  let submit_data payload =
    let blk = alloc_block t in
    let c =
      Striped.write ~charge:block_size t.dev ~now ~off:(off_of_block blk) payload
    in
    if c > !completion then completion := c;
    own := blk :: !own;
    Hashtbl.replace t.refcounts blk 1;
    blk
  in
  (* Group dirty pages by leaf. *)
  let by_leaf = Hashtbl.create 16 in
  List.iter
    (fun (idx, payload) ->
      let leaf = idx / leaf_span in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_leaf leaf) in
      (* Newest staged version of a page wins: s_pages is newest-first, so
         only take the first occurrence of each index. *)
      if not (List.mem_assoc idx cur) then
        Hashtbl.replace by_leaf leaf ((idx, payload) :: cur))
    st.s_pages;
  let prev_leaves = match prev with Some v -> v.v_leaves | None -> [] in
  let untouched =
    List.filter (fun (leaf_idx, _) -> not (Hashtbl.mem by_leaf leaf_idx)) prev_leaves
  in
  let rebuilt =
    Hashtbl.fold
      (fun leaf_idx dirty acc ->
        (* Carry over unchanged entries of this leaf from the device. *)
        let old_entries =
          match List.assoc_opt leaf_idx prev_leaves with
          | None -> []
          | Some blk -> parse_leaf (read_block_nocharge t blk)
        in
        let carried =
          List.filter (fun (idx, _, _) -> not (List.mem_assoc idx dirty)) old_entries
        in
        let replaced =
          List.filter (fun (idx, _, _) -> List.mem_assoc idx dirty) old_entries
        in
        List.iter
          (fun (_, blk, _) ->
            match Hashtbl.find_opt t.refcounts blk with
            | Some n when n > 1 -> Hashtbl.replace t.refcounts blk (n - 1)
            | Some _ -> Hashtbl.remove t.refcounts blk
            | None -> ())
          replaced;
        let fresh_entries =
          List.map
            (fun (idx, payload) -> (idx, submit_data payload, Bytes.length payload))
            dirty
        in
        let entries =
          List.sort compare (fresh_entries @ carried)
        in
        let leaf_blk = alloc_block t in
        let c =
          Striped.write t.dev ~now ~off:(off_of_block leaf_blk)
            (serialize_leaf entries)
        in
        if c > !completion then completion := c;
        own := leaf_blk :: !own;
        (leaf_idx, leaf_blk) :: acc)
      by_leaf []
  in
  let leaves = List.sort compare (rebuilt @ untouched) in
  (leaves, !own, !completion)

let commit_checkpoint t =
  let s = staging_exn t in
  let now = Clock.now t.clk in
  let epoch = t.staging_epoch in
  let prev_table =
    match last_epoch_info t with
    | Some e -> e.e_table
    | None -> Hashtbl.create 0
  in
  let new_table : (int, version) Hashtbl.t = Hashtbl.copy prev_table in
  let data_done = ref now in
  (* Write object versions for every staged object. *)
  Hashtbl.iter
    (fun oid st ->
      let prev = Hashtbl.find_opt prev_table oid in
      let kind =
        if st.s_kind <> "" then st.s_kind
        else match prev with Some v -> v.v_kind | None -> "memory"
      in
      let meta =
        if st.s_meta <> "" then st.s_meta
        else match prev with Some v -> v.v_meta | None -> ""
      in
      let leaves, own, c = build_version t ~now ~prev st in
      let v = { v_kind = kind; v_meta = meta; v_block = 0; v_leaves = leaves; v_own_blocks = own } in
      let record = serialize_version ~oid ~epoch v in
      let vblock, vc, vblocks = write_record t ~now record in
      let v = { v with v_block = vblock; v_own_blocks = vblocks @ own } in
      if c > !data_done then data_done := c;
      if vc > !data_done then data_done := vc;
      Hashtbl.replace new_table oid v)
    s;
  (* Checkpoint record after all object data (write ordering). *)
  let table_list =
    Hashtbl.fold (fun oid v acc -> (oid, v.v_block) :: acc) new_table []
    |> List.sort compare
  in
  let prev_block =
    match last_epoch_info t with Some e -> e.e_record_block | None -> 0
  in
  let record = serialize_record ~epoch ~prev_block table_list in
  let rblock, rc, _rblocks = write_record t ~now:!data_done record in
  (* Superblock strictly after the record. *)
  let sc = write_superblock t ~now:rc ~last_epoch:epoch ~record_block:rblock in
  t.epochs <-
    t.epochs @ [ { e_epoch = epoch; e_record_block = rblock; e_table = new_table } ];
  t.staging <- None;
  t.durable <- sc;
  sc

let durable_at t = t.durable
let wait_durable t = Clock.advance_to t.clk t.durable

let last_complete_epoch t =
  match last_epoch_info t with Some e -> e.e_epoch | None -> 0

let checkpoint_epochs t = List.map (fun e -> e.e_epoch) t.epochs

(* Recovery ---------------------------------------------------------------------- *)

let recover ~dev ~clock =
  let t = fresh dev clock in
  let sb = Striped.read dev ~clock ~off:(off_of_block superblock_block) ~len:block_size in
  let r = Wire.reader sb in
  let m = try Wire.rstr r with Wire.Corrupt _ -> "" in
  if m <> magic then raise (Corrupt_store "no superblock");
  let last_epoch = Wire.ru64 r in
  let record_block = Wire.ru64 r in
  t.next_block <- Wire.ru64 r;
  t.next_oid <- Wire.ru64 r;
  t.oldest_retained <- Wire.ru64 r;
  t.journals <-
    Wire.rlist r (fun r ->
        let j_id = Wire.ru64 r in
        let j_start = Wire.ru64 r in
        let j_blocks = Wire.ru64 r in
        let j_gen = Wire.ru64 r in
        { j_id; j_start; j_blocks; j_head = 0; j_gen });
  t.current_epoch <- last_epoch;
  (* Walk the record chain, oldest last; rebuild every retained epoch. *)
  let rec walk block acc =
    if block = 0 then acc
    else begin
      (* Records may span blocks; read generously (table of ~thousands). *)
      let data = read_blocks t ~blk:block ~nblocks:64 in
      let epoch, prev, table_list = parse_record data in
      (* Pruned epochs' blocks may have been reused: stop at the oldest
         retained record instead of following its prev pointer. *)
      let prev = if epoch <= t.oldest_retained then 0 else prev in
      let table = Hashtbl.create (List.length table_list) in
      List.iter
        (fun (oid, vblock) ->
          let vdata = read_blocks t ~blk:vblock ~nblocks:64 in
          let v_oid, kind, meta, leaves = parse_version vdata in
          if v_oid <> oid then raise (Corrupt_store "version/oid mismatch");
          Hashtbl.replace table oid
            { v_kind = kind; v_meta = meta; v_block = vblock; v_leaves = leaves; v_own_blocks = [] })
        table_list;
      walk prev ({ e_epoch = epoch; e_record_block = block; e_table = table } :: acc)
    end
  in
  t.epochs <- walk record_block [];
  (* Rebuild data-block refcounts from the retained leaves. *)
  List.iter
    (fun e ->
      Hashtbl.iter
        (fun _ v ->
          List.iter
            (fun (_, leaf_blk) ->
              List.iter
                (fun (_, data_blk, _) ->
                  let cur = Option.value ~default:0 (Hashtbl.find_opt t.refcounts data_blk) in
                  Hashtbl.replace t.refcounts data_blk (cur + 1))
                (parse_leaf (read_block_nocharge t leaf_blk)))
            v.v_leaves)
        e.e_table)
    t.epochs;
  (* Journal heads are recovered lazily by scanning; see journal_records. *)
  t

(* Reading ------------------------------------------------------------------------- *)

let epoch_info t epoch =
  match List.find_opt (fun e -> e.e_epoch = epoch) t.epochs with
  | Some e -> e
  | None -> raise (Corrupt_store (Printf.sprintf "unknown epoch %d" epoch))

let version_exn t ~epoch ~oid =
  match Hashtbl.find_opt (epoch_info t epoch).e_table oid with
  | Some v -> v
  | None -> raise (Corrupt_store (Printf.sprintf "oid %d not in epoch %d" oid epoch))

let objects_at t ~epoch =
  Hashtbl.fold (fun oid v acc -> (oid, v.v_kind) :: acc) (epoch_info t epoch).e_table []
  |> List.sort compare

let read_meta t ~epoch ~oid = (version_exn t ~epoch ~oid).v_meta

let leaf_entries_charged t blk =
  let data = read_blocks t ~blk ~nblocks:1 in
  parse_leaf data

let read_page t ~epoch ~oid ~idx =
  let v = version_exn t ~epoch ~oid in
  match List.assoc_opt (idx / leaf_span) v.v_leaves with
  | None -> None
  | Some leaf_blk -> (
      match
        List.find_opt (fun (i, _, _) -> i = idx) (leaf_entries_charged t leaf_blk)
      with
      | None -> None
      | Some (_, data_blk, len) ->
          (* The data block logically holds 4 KiB; the stored payload is
             its leading bytes (see Page). *)
          let data =
            Striped.read t.dev ~clock:t.clk ~off:(off_of_block data_blk) ~len
          in
          Some data)

(* Bulk page reads are issued at depth (restore, migration): charge one
   leaf I/O plus a streamed read of the pages' logical bytes instead of a
   full device round trip per page. *)
let read_pages t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  List.concat_map
    (fun (_, leaf_blk) ->
      let entries = leaf_entries_charged t leaf_blk in
      Striped.charge_read t.dev ~clock:t.clk ~bytes:(List.length entries * block_size);
      List.map
        (fun (idx, data_blk, len) ->
          (idx, Striped.read_nocharge t.dev ~off:(off_of_block data_blk) ~len))
        entries)
    v.v_leaves
  |> List.sort compare

let page_indices t ~epoch ~oid =
  let v = version_exn t ~epoch ~oid in
  List.concat_map
    (fun (_, leaf_blk) ->
      List.map (fun (idx, _, _) -> idx) (parse_leaf (read_block_nocharge t leaf_blk)))
    v.v_leaves
  |> List.sort compare

(* Journals --------------------------------------------------------------------------- *)

let journal_id j = j.j_id
let journal_find t id = List.find_opt (fun j -> j.j_id = id) t.journals

let journal_create t ~size =
  let nblocks = blocks_of_len size in
  let start = alloc_contiguous t nblocks in
  let id = List.length t.journals + 1 in
  let j = { j_id = id; j_start = start; j_blocks = nblocks; j_head = 0; j_gen = 0 } in
  t.journals <- t.journals @ [ j ];
  (* The registry lives in the superblock; persist it synchronously so the
     journal survives a crash that happens before the next checkpoint. *)
  let c =
    write_superblock t ~now:(Clock.now t.clk)
      ~last_epoch:(last_complete_epoch t)
      ~record_block:(match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
  in
  Clock.advance_to t.clk c;
  j

let journal_capacity j = j.j_blocks * block_size

let journal_append t j data =
  let w = Wire.writer () in
  Wire.u8 w 0xA4;
  Wire.u32 w j.j_gen;
  Wire.str w data;
  let payload = Wire.contents w in
  let len = Bytes.length payload in
  if j.j_head + len > journal_capacity j then invalid_arg "journal full";
  let now = Clock.now t.clk in
  (* The device write carries the real bytes; the visible latency is the
     synchronous single-stream append path (26 us + bytes at ~2.6 GiB/s,
     the Table 5 journal column).  Synchronous appends ride the device's
     priority lane: they do not wait behind queued background checkpoint
     flushes, so the caller-visible completion is the sync lane's, not the
     shared queue's.  (The payload lands via the shared queue for
     bandwidth accounting; the window in which a crash could catch a
     sync-acknowledged record still in the background queue is the
     priority-arbitration window of a real controller, microseconds.) *)
  ignore
    (Striped.write t.dev ~now ~off:(off_of_block j.j_start + j.j_head) payload);
  let sync_done =
    Resource.submit t.jqueue ~now
      ~duration:
        (Cost.nvme_sync_write_latency
        + Cost.transfer_time ~bandwidth:Cost.journal_stream_bandwidth len)
  in
  j.j_head <- j.j_head + len;
  Clock.advance_to t.clk sync_done

let journal_truncate t j =
  j.j_head <- 0;
  (* Bump the generation so stale records beyond the new head are never
     replayed, and persist it (superblock) before invalidating the first
     header — the standard WAL-reset ordering. *)
  j.j_gen <- j.j_gen + 1;
  let sb_done =
    write_superblock t ~now:(Clock.now t.clk)
      ~last_epoch:(last_complete_epoch t)
      ~record_block:
        (match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
  in
  Clock.advance_to t.clk sb_done;
  let c =
    Striped.write t.dev ~now:(Clock.now t.clk) ~off:(off_of_block j.j_start)
      (Bytes.make 8 '\000')
  in
  Clock.advance_to t.clk c

let journal_records t j =
  let data =
    Striped.read t.dev ~clock:t.clk ~off:(off_of_block j.j_start)
      ~len:(journal_capacity j)
  in
  let r = Wire.reader data in
  let rec scan acc =
    if Wire.remaining r < 9 then List.rev acc
    else
      let tag = Wire.ru8 r in
      if tag <> 0xA4 then List.rev acc
      else
        match
          let gen = Wire.ru32 r in
          (gen, Wire.rstr r)
        with
        | gen, s when gen = j.j_gen -> scan (s :: acc)
        | _, _ -> List.rev acc
        | exception Wire.Corrupt _ -> List.rev acc
  in
  scan []

(* History ------------------------------------------------------------------------------- *)

(* Every block reachable from one epoch: its checkpoint record, each
   version record, each leaf, and each data block.  Computed structurally
   so it is exact even for a store instance rebuilt by recovery. *)
let reachable_blocks t e =
  let out = Hashtbl.create 256 in
  let add_record blk len =
    for i = 0 to blocks_of_len len - 1 do
      Hashtbl.replace out (blk + i) ()
    done
  in
  let table_list =
    Hashtbl.fold (fun oid v acc -> (oid, v.v_block) :: acc) e.e_table []
  in
  add_record e.e_record_block
    (Bytes.length (serialize_record ~epoch:e.e_epoch ~prev_block:0 table_list));
  Hashtbl.iter
    (fun oid v ->
      add_record v.v_block
        (Bytes.length (serialize_version ~oid ~epoch:e.e_epoch v));
      List.iter
        (fun (_, leaf_blk) ->
          Hashtbl.replace out leaf_blk ();
          List.iter
            (fun (_, data_blk, _) -> Hashtbl.replace out data_blk ())
            (parse_leaf (read_block_nocharge t leaf_blk)))
        v.v_leaves)
    e.e_table;
  out

let prune_history t ~keep =
  let n = List.length t.epochs in
  if n <= keep then 0
  else begin
    let drop = n - keep in
    let dropped, kept =
      let rec split i acc = function
        | rest when i = drop -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | e :: rest -> split (i + 1) (e :: acc) rest
      in
      split 0 [] t.epochs
    in
    (* Mark everything the kept epochs reach, sweep what only the dropped
       epochs reached. *)
    let live = Hashtbl.create 1024 in
    List.iter
      (fun e -> Hashtbl.iter (fun b () -> Hashtbl.replace live b ()) (reachable_blocks t e))
      kept;
    (* Deduplicate across the dropped epochs: several of them typically
       share blocks, and a block must enter the free list exactly once. *)
    let candidates = Hashtbl.create 1024 in
    List.iter
      (fun e ->
        Hashtbl.iter
          (fun b () -> Hashtbl.replace candidates b ())
          (reachable_blocks t e))
      dropped;
    let freed = ref 0 in
    Hashtbl.iter
      (fun b () ->
        if not (Hashtbl.mem live b) then begin
          Hashtbl.remove t.refcounts b;
          free_block t b;
          incr freed
        end)
      candidates;
    t.epochs <- kept;
    (match kept with
    | e :: _ -> t.oldest_retained <- e.e_epoch
    | [] -> ());
    (* Persist the new chain bound so recovery never follows a prev
       pointer into reused blocks. *)
    let c =
      write_superblock t ~now:(Clock.now t.clk)
        ~last_epoch:(last_complete_epoch t)
        ~record_block:
          (match last_epoch_info t with Some e -> e.e_record_block | None -> 0)
    in
    Clock.advance_to t.clk c;
    !freed
  end

let blocks_allocated t = t.next_block - List.length t.free_list
let blocks_free t = List.length t.free_list
