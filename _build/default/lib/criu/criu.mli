(** The CRIU baseline: a process-centric stop-the-world checkpointer.

    This reimplements the architecture the paper compares against
    (Tables 1 and 7): state is collected {e from the outside} by walking
    each process and querying per-object views (the procfs/parasite
    approach), sharing relationships are {e inferred} by scanning and
    deduplicating rather than being structural, the target stays frozen
    for the whole collection {e and} the memory copy (no incremental
    tracking, no COW), and the image is written out afterwards without a
    flush.

    The checkpoint produces a real self-contained image (the same wire
    format discipline as the SLS) and {!restore} rebuilds processes from
    it, so correctness tests hold for the baseline too; only its costs
    differ, and they differ for the architectural reasons above. *)

type breakdown = {
  os_state_ns : int;  (** per-object traversal and sharing inference *)
  memory_copy_ns : int;  (** copying pages while the target is stopped *)
  total_stop_ns : int;
  io_write_ns : int;  (** writing the image, no flush *)
  image_bytes : int;
}

val checkpoint :
  Aurora_kern.Machine.t -> Aurora_kern.Process.t list -> breakdown * string
(** Stop, collect, copy, resume, write.  Returns the cost breakdown and
    the image. *)

val restore :
  Aurora_kern.Machine.t -> string -> Aurora_kern.Process.t list
(** Recreate the processes from an image (anonymous memory, pipes,
    sockets, kqueues; the supported subset mirrors the fraction of POSIX
    CRIU handles well). *)
