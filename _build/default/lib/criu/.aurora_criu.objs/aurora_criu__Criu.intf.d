lib/criu/criu.mli: Aurora_kern
