module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Fs = Aurora_fs.Fs
module Bench_fs = Aurora_fs.Bench_fs
module Aurora_bench = Aurora_fs.Aurora_bench
module Zfs_model = Aurora_fs.Zfs_model
module Ffs_model = Aurora_fs.Ffs_model
module Vnode = Aurora_kern.Vnode

let fresh () =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  (clock, dev, store, Fs.create ~store)

let test_create_write_read () =
  let clock, _dev, _store, fs = fresh () in
  let vn = Fs.create_file fs "/a/b/file" in
  Fs.write fs vn ~off:0 "file system contents";
  Alcotest.(check string) "roundtrip" "file system contents"
    (Fs.read fs vn ~off:0 ~len:100);
  Alcotest.(check int) "size" 20 (Vnode.size vn);
  ignore clock

let test_lookup_and_unlink () =
  let _clock, _dev, _store, fs = fresh () in
  ignore (Fs.create_file fs "/x");
  Alcotest.(check bool) "found" true (Fs.lookup fs "/x" <> None);
  Alcotest.(check bool) "unlinked" true (Fs.unlink fs "/x");
  Alcotest.(check bool) "gone" true (Fs.lookup fs "/x" = None);
  Alcotest.(check bool) "double unlink" false (Fs.unlink fs "/x")

let test_rename () =
  let _clock, _dev, _store, fs = fresh () in
  let vn = Fs.create_file fs "/old" in
  Fs.write fs vn ~off:0 "data";
  Alcotest.(check bool) "renamed" true (Fs.rename fs ~src:"/old" ~dst:"/new");
  Alcotest.(check bool) "old gone" true (Fs.lookup fs "/old" = None);
  match Fs.lookup fs "/new" with
  | Some vn' ->
      Alcotest.(check string) "same file" "data" (Fs.read fs vn' ~off:0 ~len:4)
  | None -> Alcotest.fail "new name missing"

let test_fsync_is_cheap () =
  let clock, _dev, _store, fs = fresh () in
  let vn = Fs.create_file fs "/f" in
  Fs.write fs vn ~off:0 (String.make 65536 'x');
  let t0 = Clock.now clock in
  Fs.fsync fs vn;
  let cost = Clock.now clock - t0 in
  (* Checkpoint consistency: fsync is just a syscall, not an I/O wait. *)
  Alcotest.(check bool) (Printf.sprintf "fsync ~free (%dns)" cost) true (cost < 10_000)

let test_flush_restore_roundtrip () =
  let clock, dev, store, fs = fresh () in
  let vn = Fs.create_file fs "/persist/me" in
  Fs.write fs vn ~off:0 "durable file data";
  (* Larger than one page, crossing boundaries. *)
  Fs.write fs vn ~off:5000 "second page";
  ignore (Store.begin_checkpoint store);
  Fs.flush_to_store fs;
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Striped.crash dev ~now:(Clock.now clock);
  let store2 = Store.recover ~dev ~clock in
  let fs2 = Fs.restore_from_store ~store:store2 ~epoch:(Store.last_complete_epoch store2) in
  match Fs.lookup fs2 "/persist/me" with
  | Some vn' ->
      Alcotest.(check string) "first page" "durable file data"
        (Fs.read fs2 vn' ~off:0 ~len:17);
      Alcotest.(check string) "second page" "second page" (Fs.read fs2 vn' ~off:5000 ~len:11);
      Alcotest.(check int) "size" (Vnode.size vn) (Vnode.size vn')
  | None -> Alcotest.fail "file lost across crash"

let test_incremental_vnode_flush () =
  let _clock, _dev, store, fs = fresh () in
  let vn = Fs.create_file fs "/f" in
  Fs.write fs vn ~off:0 "v1";
  ignore (Store.begin_checkpoint store);
  Fs.flush_to_store fs;
  ignore (Store.commit_checkpoint store);
  Alcotest.(check int) "dirty set cleared" 0 (Vnode.dirty_count vn);
  (* Unchanged file: the next flush stages nothing for it. *)
  ignore (Store.begin_checkpoint store);
  Fs.flush_to_store fs;
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  Alcotest.(check bool) "still readable at latest epoch" true
    (Store.read_meta store ~epoch:(Store.last_complete_epoch store)
       ~oid:(Option.get (Fs.oid_of_inode fs (Vnode.inode vn)))
    <> "")

let test_anonymous_vnode_persisted () =
  let _clock, _dev, store, fs = fresh () in
  let vn = Fs.create_file fs "/tmp" in
  Vnode.opened vn;
  Fs.write fs vn ~off:0 "anon";
  Alcotest.(check bool) "unlink ok" true (Fs.unlink fs "/tmp");
  Alcotest.(check bool) "alive while open" true (Fs.vnode_by_inode fs (Vnode.inode vn) <> None);
  ignore (Store.begin_checkpoint store);
  Fs.flush_to_store fs;
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  let epoch = Store.last_complete_epoch store in
  let fs2 = Fs.restore_from_store ~store ~epoch in
  (* No name, but the vnode object exists with its contents. *)
  match Fs.vnode_by_inode fs2 (Vnode.inode vn) with
  | Some vn' -> Alcotest.(check string) "content" "anon" (Fs.read fs2 vn' ~off:0 ~len:4)
  | None -> Alcotest.fail "anonymous vnode lost"

let test_closed_unlinked_vnode_reclaimed () =
  let _clock, _dev, _store, fs = fresh () in
  let vn = Fs.create_file fs "/gone" in
  Alcotest.(check bool) "unlink" true (Fs.unlink fs "/gone");
  Alcotest.(check bool) "reclaimed" true (Fs.vnode_by_inode fs (Vnode.inode vn) = None)

(* Bench adapters: structural sanity of the three FS models. *)

let run_seq fsops =
  let open Aurora_workloads.Filebench in
  (* Long enough that Aurora's asynchronous checkpoint flushes overlap the
     compute instead of draining serially at the end. *)
  let r = sequential_write fsops ~io_size:(64 * 1024) ~total:(256 * 1024 * 1024) in
  throughput_gib_s r

let test_bench_fs_sane_throughputs () =
  let aurora = run_seq (Aurora_bench.make ()) in
  let zfs = run_seq (Zfs_model.make ~checksum:false ()) in
  let zfs_csum = run_seq (Zfs_model.make ~checksum:true ()) in
  let ffs = run_seq (Ffs_model.make ()) in
  Alcotest.(check bool)
    (Printf.sprintf "aurora (%.2f) faster than zfs (%.2f)" aurora zfs)
    true (aurora > zfs);
  Alcotest.(check bool)
    (Printf.sprintf "zfs (%.2f) faster than zfs+csum (%.2f)" zfs zfs_csum)
    true (zfs > zfs_csum);
  Alcotest.(check bool)
    (Printf.sprintf "all in a plausible GiB/s band (%0.2f %0.2f %0.2f %0.2f)" aurora zfs zfs_csum ffs)
    true
    (List.for_all (fun x -> x > 0.3 && x < 12.0) [ aurora; zfs; zfs_csum; ffs ])

let test_bench_fs_zfs_small_write_penalty () =
  let open Aurora_workloads.Filebench in
  let small fsops =
    throughput_gib_s (random_write fsops ~io_size:4096 ~total:(16 * 1024 * 1024) ~seed:7)
  in
  let zfs = small (Zfs_model.make ~checksum:false ()) in
  let ffs = small (Ffs_model.make ()) in
  (* The record read-modify-write makes ZFS far slower at 4 KiB. *)
  Alcotest.(check bool)
    (Printf.sprintf "ffs (%.2f) >> zfs (%.2f) at 4KiB" ffs zfs)
    true
    (ffs > 2.0 *. zfs)

let test_bench_fs_aurora_fsync_wins () =
  let open Aurora_workloads.Filebench in
  let fsync_rate fsops = ops_per_sec (write_fsync fsops ~io_size:4096 ~count:2000) in
  let aurora = fsync_rate (Aurora_bench.make ()) in
  let zfs = fsync_rate (Zfs_model.make ~checksum:false ()) in
  let ffs = fsync_rate (Ffs_model.make ()) in
  Alcotest.(check bool)
    (Printf.sprintf "aurora (%.0f) beats ffs (%.0f) beats zfs (%.0f)" aurora ffs zfs)
    true
    (aurora > 2.0 *. ffs && ffs > zfs)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fs flush/restore preserves random files" ~count:25
         QCheck.(
           list_of_size (Gen.int_range 1 10)
             (pair (string_of_size (Gen.int_range 1 12)) (string_of_size (Gen.int_range 0 200))))
         (fun files ->
           let _clock, _dev, store, fs = fresh () in
           let model = Hashtbl.create 16 in
           List.iter
             (fun (name, content) ->
               let path = "/q/" ^ String.map (fun c -> if c = '/' then '_' else c) name in
               let vn = Fs.create_file fs path in
               Fs.write fs vn ~off:0 content;
               Hashtbl.replace model path content)
             files;
           ignore (Store.begin_checkpoint store);
           Fs.flush_to_store fs;
           ignore (Store.commit_checkpoint store);
           Store.wait_durable store;
           let fs2 =
             Fs.restore_from_store ~store ~epoch:(Store.last_complete_epoch store)
           in
           Hashtbl.fold
             (fun path content ok ->
               ok
               &&
               match Fs.lookup fs2 path with
               | Some vn -> Fs.read fs2 vn ~off:0 ~len:(String.length content) = content
               | None -> false)
             model true));
  ]

let () =
  Alcotest.run "aurora_fs"
    [
      ( "namespace",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "lookup/unlink" `Quick test_lookup_and_unlink;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "reclaim" `Quick test_closed_unlinked_vnode_reclaimed;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "fsync cheap" `Quick test_fsync_is_cheap;
          Alcotest.test_case "flush/restore" `Quick test_flush_restore_roundtrip;
          Alcotest.test_case "incremental flush" `Quick test_incremental_vnode_flush;
          Alcotest.test_case "anonymous vnode" `Quick test_anonymous_vnode_persisted;
        ] );
      ( "bench models",
        [
          Alcotest.test_case "sane throughputs" `Quick test_bench_fs_sane_throughputs;
          Alcotest.test_case "zfs 4KiB penalty" `Quick test_bench_fs_zfs_small_write_penalty;
          Alcotest.test_case "aurora fsync wins" `Quick test_bench_fs_aurora_fsync_wins;
        ] );
      ("properties", qcheck_tests);
    ]
