module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vfs = Aurora_kern.Vfs
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Criu = Aurora_criu.Criu
module Units = Aurora_util.Units

let machine () =
  let m = Machine.create () in
  Machine.mount m (Vfs.ram_ops ~clock:m.Machine.clock);
  m

let test_checkpoint_restore_memory () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"victim" in
  let e = Syscall.mmap_anon p ~npages:8 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "criu preserved this";
  let _breakdown, image = Criu.checkpoint m [ p ] in
  let m2 = machine () in
  match Criu.restore m2 image with
  | [ p' ] ->
      Alcotest.(check string) "memory restored" "criu preserved this"
        (Vm_space.read_string p'.Process.space ~addr ~len:19)
  | l -> Alcotest.failf "expected 1 process, got %d" (List.length l)

let test_pipe_restored () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"victim" in
  let rd, wr = Syscall.pipe m p in
  ignore (Syscall.write m p ~fd:wr "buffered");
  let _breakdown, image = Criu.checkpoint m [ p ] in
  let m2 = machine () in
  match Criu.restore m2 image with
  | [ p' ] ->
      Alcotest.(check string) "pipe buffer" "buffered" (Syscall.read m2 p' ~fd:rd ~len:100);
      ignore wr
  | _ -> Alcotest.fail "expected 1 process"

let test_stop_time_scales_with_memory () =
  let run mib =
    let m = machine () in
    let p = Syscall.spawn m ~name:"victim" in
    let npages = mib * Units.mib / Page.logical_size in
    let e = Syscall.mmap_anon p ~npages in
    Vm_space.touch_write p.Process.space
      ~addr:(Vm_space.addr_of_entry e)
      ~len:(npages * Page.logical_size);
    let b, _ = Criu.checkpoint m [ p ] in
    b
  in
  let small = run 10 and big = run 100 in
  Alcotest.(check bool)
    (Printf.sprintf "memory copy scales (%d vs %d)" small.Criu.memory_copy_ns
       big.Criu.memory_copy_ns)
    true
    (big.Criu.memory_copy_ns > 8 * small.Criu.memory_copy_ns);
  (* The whole copy happens inside the stop window: no incremental
     tracking. *)
  Alcotest.(check bool) "copy within stop" true
    (big.Criu.total_stop_ns >= big.Criu.memory_copy_ns + big.Criu.os_state_ns)

let test_os_state_scales_with_objects () =
  let run nfds =
    let m = machine () in
    let p = Syscall.spawn m ~name:"victim" in
    for _ = 1 to nfds do
      ignore (Syscall.pipe m p)
    done;
    let b, _ = Criu.checkpoint m [ p ] in
    b.Criu.os_state_ns
  in
  let small = run 5 and big = run 100 in
  Alcotest.(check bool)
    (Printf.sprintf "per-object inference dominates (%d vs %d)" small big)
    true
    (big > 10 * small)

let test_target_resumes_after_checkpoint () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"victim" in
  let thr = Process.main_thread p in
  let _b, _image = Criu.checkpoint m [ p ] in
  Alcotest.(check bool) "running again" true
    (thr.Aurora_kern.Thread.state = Aurora_kern.Thread.Running_user)

let test_table1_shape () =
  (* Table 1's anchors for a 500 MB Redis: OS state ~49 ms, memory copy
     ~413 ms, IO ~350 ms.  Verify the orders of magnitude. *)
  let m = machine () in
  let redis = Aurora_apps.Redis_sim.create ~machine:m ~resident_mib:500 () in
  let b, _ = Criu.checkpoint m [ Aurora_apps.Redis_sim.proc redis ] in
  let ms x = float_of_int x /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "os state tens of ms (%.1f)" (ms b.Criu.os_state_ns))
    true
    (ms b.Criu.os_state_ns > 20.0 && ms b.Criu.os_state_ns < 90.0);
  Alcotest.(check bool)
    (Printf.sprintf "memory copy ~400ms (%.1f)" (ms b.Criu.memory_copy_ns))
    true
    (ms b.Criu.memory_copy_ns > 300.0 && ms b.Criu.memory_copy_ns < 550.0);
  Alcotest.(check bool)
    (Printf.sprintf "io write ~350ms (%.1f)" (ms b.Criu.io_write_ns))
    true
    (ms b.Criu.io_write_ns > 250.0 && ms b.Criu.io_write_ns < 480.0)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"criu restores random memory states" ~count:25
         QCheck.(
           list_of_size (Gen.int_range 1 20)
             (pair (int_range 0 (4 * 4096 - 8)) (string_of_size (Gen.return 4))))
         (fun writes ->
           let m = machine () in
           let p = Syscall.spawn m ~name:"victim" in
           let e = Syscall.mmap_anon p ~npages:4 in
           let base = Vm_space.addr_of_entry e in
           List.iter
             (fun (off, data) -> Vm_space.write_string p.Process.space ~addr:(base + off) data)
             writes;
           let snapshot =
             List.map
               (fun (off, _) -> Vm_space.read_string p.Process.space ~addr:(base + off) ~len:4)
               writes
           in
           let _b, image = Criu.checkpoint m [ p ] in
           let m2 = machine () in
           match Criu.restore m2 image with
           | [ p' ] ->
               List.for_all2
                 (fun (off, _) expected ->
                   Vm_space.read_string p'.Process.space ~addr:(base + off) ~len:4 = expected)
                 writes snapshot
           | _ -> false));
  ]

let () =
  Alcotest.run "aurora_criu"
    [
      ( "correctness",
        [
          Alcotest.test_case "memory roundtrip" `Quick test_checkpoint_restore_memory;
          Alcotest.test_case "pipe" `Quick test_pipe_restored;
          Alcotest.test_case "target resumes" `Quick test_target_resumes_after_checkpoint;
        ] );
      ( "costs",
        [
          Alcotest.test_case "memory scaling" `Quick test_stop_time_scales_with_memory;
          Alcotest.test_case "object scaling" `Quick test_os_state_scales_with_objects;
          Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
        ] );
      ("properties", qcheck_tests);
    ]
