module Rng = Aurora_util.Rng
module Histogram = Aurora_util.Histogram
module Units = Aurora_util.Units
module Text_table = Aurora_util.Text_table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.bits64 a = Rng.bits64 c)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in closed range" true (v >= 5 && v <= 9)
  done

let test_rng_float_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "float range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f close to 10" mean)
    true
    (mean > 9.0 && mean < 11.0)

let test_rng_shuffle_permutes () =
  let r = Rng.create 6 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 0.001)) "p50" 50.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 0.001)) "p99" 99.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.001)) "p100" 100.0 (Histogram.percentile h 100.0);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Histogram.mean h)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Histogram.percentile h 99.0)

let test_histogram_add_after_percentile () =
  (* Percentile sorts internally; adds afterwards must still be seen. *)
  let h = Histogram.create () in
  Histogram.add h 5.0;
  ignore (Histogram.percentile h 50.0);
  Histogram.add h 1.0;
  Alcotest.(check (float 0.001)) "min updates" 1.0 (Histogram.percentile h 1.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 3.0;
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check (float 0.001)) "merged mean" 2.0 (Histogram.mean a)

let test_histogram_stddev () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 0.001)) "known stddev" 2.0 (Histogram.stddev h)

let test_units_bytes () =
  Alcotest.(check string) "4 KiB" "4 KiB" (Units.bytes_to_string (4 * Units.kib));
  Alcotest.(check string) "1 GiB" "1 GiB" (Units.bytes_to_string Units.gib);
  Alcotest.(check string) "500 B" "500 B" (Units.bytes_to_string 500)

let test_units_time () =
  Alcotest.(check string) "microseconds" "28 \xc2\xb5s" (Units.ns_to_string 28_000);
  Alcotest.(check string) "milliseconds" "4 ms" (Units.ns_to_string 4_000_000)

let test_units_pages () =
  Alcotest.(check int) "exact" 1 (Units.pages_of_bytes 4096);
  Alcotest.(check int) "round up" 2 (Units.pages_of_bytes 4097);
  Alcotest.(check int) "zero" 0 (Units.pages_of_bytes 0)

let test_units_seconds () =
  Alcotest.(check string) "seconds" "1.20 s" (Units.ns_to_string 1_200_000_000);
  Alcotest.(check string) "nanoseconds" "42 ns" (Units.ns_to_string 42)

let test_table_separator () =
  let t = Text_table.create ~header:[ "a" ] in
  Text_table.add_row t [ "1" ];
  Text_table.add_separator t;
  Text_table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Text_table.render t) in
  (* header, rule, row, rule, row, trailing *)
  Alcotest.(check int) "line count" 6 (List.length lines)

let test_table_render () =
  let t = Text_table.create ~header:[ "name"; "value" ] in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_row t [ "b"; "22" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  (* Numeric column right-aligns: "22" under "1"'s column ends aligned. *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rng int always in bounds" ~count:500
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let r = Rng.create seed in
           let v = Rng.int r bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"histogram percentile is monotone" ~count:200
         QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
         (fun xs ->
           let h = Histogram.create () in
           List.iter (Histogram.add h) xs;
           let p25 = Histogram.percentile h 25.0
           and p75 = Histogram.percentile h 75.0 in
           p25 <= p75));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"percentile 100 equals max" ~count:200
         QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
         (fun xs ->
           let h = Histogram.create () in
           List.iter (Histogram.add h) xs;
           Histogram.percentile h 100.0 = Histogram.max h));
  ]

let () =
  Alcotest.run "aurora_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_different_seeds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "add after percentile" `Quick test_histogram_add_after_percentile;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "stddev" `Quick test_histogram_stddev;
        ] );
      ( "units",
        [
          Alcotest.test_case "bytes" `Quick test_units_bytes;
          Alcotest.test_case "time" `Quick test_units_time;
          Alcotest.test_case "pages" `Quick test_units_pages;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ("units-extra", [ Alcotest.test_case "seconds" `Quick test_units_seconds ]);
      ("properties", qcheck_tests);
    ]
