module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Thread = Aurora_kern.Thread
module Syscall = Aurora_kern.Syscall
module Vnode = Aurora_kern.Vnode
module Pipe = Aurora_kern.Pipe
module Socket = Aurora_kern.Socket
module Kqueue = Aurora_kern.Kqueue
module Vfs = Aurora_kern.Vfs
module Fdesc = Aurora_kern.Fdesc
module Shm = Aurora_kern.Shm
module Vm_space = Aurora_vm.Vm_space
module Clock = Aurora_sim.Clock

let machine () =
  let m = Machine.create () in
  Machine.mount m (Vfs.ram_ops ~clock:m.Machine.clock);
  m

let test_spawn_and_pid () =
  let m = machine () in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  Alcotest.(check bool) "distinct pids" true (a.Process.pid_global <> b.Process.pid_global);
  match Machine.proc m a.Process.pid_global with
  | Some found -> Alcotest.(check bool) "lookup works" true (found == a)
  | None -> Alcotest.fail "lookup failed"

let test_file_write_read () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/data" ~create:true in
  let n = Syscall.write m p ~fd "persistent contents" in
  Alcotest.(check int) "wrote all" 19 n;
  ignore (Syscall.lseek p ~fd ~off:0);
  Alcotest.(check string) "readback" "persistent contents" (Syscall.read m p ~fd ~len:100);
  Alcotest.(check string) "eof" "" (Syscall.read m p ~fd ~len:100)

let test_open_missing_fails () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  Alcotest.check_raises "ENOENT" (Syscall.Err "ENOENT") (fun () ->
      ignore (Syscall.open_file m p ~path:"/missing" ~create:false))

let test_fork_shares_offset () =
  (* The paper's file-descriptor sharing example (section 5.1): after fork,
     a read by one process moves the offset seen by the other. *)
  let m = machine () in
  let p = Syscall.spawn m ~name:"parent" in
  let fd = Syscall.open_file m p ~path:"/f" ~create:true in
  ignore (Syscall.write m p ~fd "abcdefgh");
  ignore (Syscall.lseek p ~fd ~off:0);
  let child = Syscall.fork m p in
  let part1 = Syscall.read m child ~fd ~len:4 in
  let part2 = Syscall.read m p ~fd ~len:4 in
  Alcotest.(check string) "child reads prefix" "abcd" part1;
  Alcotest.(check string) "parent continues at shared offset" "efgh" part2

let test_separate_open_independent_offset () =
  (* A third process opening the same file gets its own descriptor over the
     same vnode. *)
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let q = Syscall.spawn m ~name:"q" in
  let fdp = Syscall.open_file m p ~path:"/f" ~create:true in
  ignore (Syscall.write m p ~fd:fdp "abcdefgh");
  let fdq = Syscall.open_file m q ~path:"/f" ~create:false in
  ignore (Syscall.lseek p ~fd:fdp ~off:0);
  Alcotest.(check string) "p reads" "abcd" (Syscall.read m p ~fd:fdp ~len:4);
  Alcotest.(check string) "q offset independent" "abcd" (Syscall.read m q ~fd:fdq ~len:4)

let test_fork_cow_memory () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let e = Syscall.mmap_anon p ~npages:2 in
  let addr = Vm_space.addr_of_entry e in
  Vm_space.write_string p.Process.space ~addr "base";
  let c = Syscall.fork m p in
  Vm_space.write_string c.Process.space ~addr "kid!";
  Alcotest.(check string) "parent isolated" "base"
    (Vm_space.read_string p.Process.space ~addr ~len:4);
  Alcotest.(check string) "child sees own write" "kid!"
    (Vm_space.read_string c.Process.space ~addr ~len:4)

let test_exit_wait_sigchld () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"parent" in
  let c = Syscall.fork m p in
  Alcotest.(check (option (pair int int))) "no zombie yet" None (Syscall.waitpid m p);
  Syscall.exit m c ~code:7;
  Alcotest.(check (option int)) "SIGCHLD queued" (Some Process.sigchld)
    (Process.take_signal p);
  (match Syscall.waitpid m p with
  | Some (pid, status) ->
      Alcotest.(check int) "reaped child" c.Process.pid_global pid;
      Alcotest.(check int) "status" 7 status
  | None -> Alcotest.fail "expected zombie");
  Alcotest.(check (option (pair int int))) "only once" None (Syscall.waitpid m p)

let test_pipe_roundtrip () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let rd, wr = Syscall.pipe m p in
  ignore (Syscall.write m p ~fd:wr "through the pipe");
  Alcotest.(check string) "pipe data" "through the pipe" (Syscall.read m p ~fd:rd ~len:100)

let test_pipe_capacity () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let _rd, wr = Syscall.pipe m p in
  let big = String.make (Pipe.capacity + 1000) 'x' in
  let n = Syscall.write m p ~fd:wr big in
  Alcotest.(check int) "bounded by capacity" Pipe.capacity n

let test_dup_shares_offset () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/f" ~create:true in
  ignore (Syscall.write m p ~fd "0123456789");
  ignore (Syscall.lseek p ~fd ~off:0);
  let fd2 = Syscall.dup p ~fd in
  ignore (Syscall.read m p ~fd ~len:3);
  Alcotest.(check string) "dup continues at shared offset" "345"
    (Syscall.read m p ~fd:fd2 ~len:3)

let test_socketpair_messages () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let a, b = Syscall.socketpair m p in
  Syscall.send_msg m p ~fd:a "ping";
  (match Syscall.recv_msg m p ~fd:b with
  | Some (data, fds) ->
      Alcotest.(check string) "data" "ping" data;
      Alcotest.(check int) "no rights" 0 (List.length fds)
  | None -> Alcotest.fail "expected message")

let test_scm_rights_transfers_descriptor () =
  (* Send an open file over a UNIX socket; the receiver's new fd shares
     the description (same offset). *)
  let m = machine () in
  let sender = Syscall.spawn m ~name:"sender" in
  let receiver = Syscall.spawn m ~name:"receiver" in
  let file_fd = Syscall.open_file m sender ~path:"/shared" ~create:true in
  ignore (Syscall.write m sender ~fd:file_fd "0123456789");
  ignore (Syscall.lseek sender ~fd:file_fd ~off:0);
  let a, b = Syscall.socketpair m sender in
  (* Hand the receiving socket end to the receiver process. *)
  let b_desc = Syscall.fd_exn sender b in
  Fdesc.retain b_desc;
  let b_recv = Process.alloc_fd receiver b_desc in
  Syscall.send_msg m sender ~fd:a ~fds:[ file_fd ] "here";
  match Syscall.recv_msg m receiver ~fd:b_recv with
  | Some (data, [ got_fd ]) ->
      Alcotest.(check string) "payload" "here" data;
      ignore (Syscall.read m sender ~fd:file_fd ~len:4);
      Alcotest.(check string) "offset shared across processes" "4567"
        (Syscall.read m receiver ~fd:got_fd ~len:4)
  | Some (_, fds) -> Alcotest.failf "expected 1 fd, got %d" (List.length fds)
  | None -> Alcotest.fail "expected message"

let test_kqueue_register () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let kq = Syscall.kqueue m p in
  for i = 0 to 9 do
    Syscall.kevent_register p ~fd:kq
      { Kqueue.ident = i; filter = Kqueue.Ev_read; flags = 1; udata = i * 10 }
  done;
  (* Re-registering the same (ident, filter) replaces. *)
  Syscall.kevent_register p ~fd:kq
    { Kqueue.ident = 3; filter = Kqueue.Ev_read; flags = 2; udata = 999 };
  match (Syscall.fd_exn p kq).Fdesc.kind with
  | Fdesc.Kqueue_fd k ->
      Alcotest.(check int) "ten events" 10 (Kqueue.event_count k);
      let ev = List.find (fun e -> e.Kqueue.ident = 3) (Kqueue.events k) in
      Alcotest.(check int) "replaced" 999 ev.Kqueue.udata
  | _ -> Alcotest.fail "not a kqueue"

let test_pty_echo_path () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"term" in
  let master = Syscall.posix_openpt m p in
  let slave = Syscall.open_pty_slave m p ~master_fd:master in
  ignore (Syscall.write m p ~fd:master "ls\n");
  Alcotest.(check string) "slave input" "ls\n" (Syscall.read m p ~fd:slave ~len:10);
  ignore (Syscall.write m p ~fd:slave "file1\n");
  Alcotest.(check string) "master output" "file1\n" (Syscall.read m p ~fd:master ~len:10)

let test_posix_shm_shared_between_processes () =
  let m = machine () in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  let fda = Syscall.shm_open m a ~name:"/seg" ~npages:4 in
  let fdb = Syscall.shm_open m b ~name:"/seg" ~npages:4 in
  let ea = Syscall.mmap_shm a ~fd:fda in
  let eb = Syscall.mmap_shm b ~fd:fdb in
  Vm_space.write_string a.Process.space ~addr:(Vm_space.addr_of_entry ea) "ipc!";
  Alcotest.(check string) "b sees a's write" "ipc!"
    (Vm_space.read_string b.Process.space ~addr:(Vm_space.addr_of_entry eb) ~len:4)

let test_sysv_shm () =
  let m = machine () in
  let a = Syscall.spawn m ~name:"a" in
  let b = Syscall.spawn m ~name:"b" in
  let seg = Syscall.shmget m ~key:1234 ~npages:2 in
  let seg2 = Syscall.shmget m ~key:1234 ~npages:2 in
  Alcotest.(check bool) "same segment by key" true (seg == seg2);
  let ea = Syscall.shmat a seg in
  let eb = Syscall.shmat b seg in
  Vm_space.write_string a.Process.space ~addr:(Vm_space.addr_of_entry ea) "sysv";
  Alcotest.(check string) "visible via key" "sysv"
    (Vm_space.read_string b.Process.space ~addr:(Vm_space.addr_of_entry eb) ~len:4)

let test_device_whitelist () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_device m p ~name:"hpet0" in
  Alcotest.(check bool) "hpet opens" true (fd >= 0);
  Alcotest.check_raises "EPERM" (Syscall.Err "EPERM") (fun () ->
      ignore (Syscall.open_device m p ~name:"gpu0"))

let test_dup2_replaces_slot () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd1 = Syscall.open_file m p ~path:"/a" ~create:true in
  let fd2 = Syscall.open_file m p ~path:"/b" ~create:true in
  ignore (Syscall.write m p ~fd:fd1 "AAA");
  Syscall.dup2 p ~src:fd1 ~dst:fd2;
  ignore (Syscall.lseek p ~fd:fd2 ~off:0);
  Alcotest.(check string) "dst now reads src's file" "AAA" (Syscall.read m p ~fd:fd2 ~len:8)

let test_setsid_and_kill () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"daemon" in
  Syscall.setsid p;
  Alcotest.(check int) "session leader" p.Process.pid_local p.Process.sid;
  Alcotest.(check bool) "kill by local pid" true (Syscall.kill m ~pid:p.Process.pid_local ~signo:15);
  Alcotest.(check (option int)) "signal pending" (Some 15) (Process.take_signal p);
  Alcotest.(check bool) "kill unknown pid" false (Syscall.kill m ~pid:9999 ~signo:15)

let test_tcp_connect_accept () =
  let m = machine () in
  let srv = Syscall.spawn m ~name:"srv" in
  let lfd = Syscall.socket m srv Socket.Inet Socket.Tcp in
  Syscall.bind srv ~fd:lfd { Socket.host = "0.0.0.0"; port = 8080 };
  Syscall.listen srv ~fd:lfd;
  let cli = Syscall.spawn m ~name:"cli" in
  let cfd = Syscall.socket m cli Socket.Inet Socket.Tcp in
  Alcotest.(check bool) "no listener on wrong port" false
    (Syscall.tcp_connect m cli ~fd:cfd { Socket.host = "0.0.0.0"; port = 9999 });
  Alcotest.(check bool) "syn lands" true
    (Syscall.tcp_connect m cli ~fd:cfd { Socket.host = "0.0.0.0"; port = 8080 });
  match Syscall.accept m srv ~fd:lfd with
  | Some conn ->
      ignore (Syscall.write m srv ~fd:conn "pong");
      Alcotest.(check string) "bytes flow" "pong" (Syscall.read m cli ~fd:cfd ~len:8);
      (match (Syscall.fd_exn srv conn).Fdesc.kind with
      | Fdesc.Socket_fd s -> (
          match Socket.tcp_state s with
          | Socket.Tcp_established e ->
              Alcotest.(check bool) "sequence numbers live" true (e.snd_seq > 0)
          | _ -> Alcotest.fail "not established")
      | _ -> Alcotest.fail "wrong kind")
  | None -> Alcotest.fail "accept returned nothing"

let test_spawn_thread () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let t1 = Syscall.spawn_thread m p in
  let t2 = Syscall.spawn_thread m p in
  Alcotest.(check int) "three threads" 3 (List.length p.Process.threads);
  Alcotest.(check bool) "distinct tids" true
    (t1.Aurora_kern.Thread.tid_global <> t2.Aurora_kern.Thread.tid_global)

let test_aio_write_and_complete () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/f" ~create:true in
  let id = Syscall.aio_write m p ~fd ~off:0 "async data" in
  Alcotest.(check int) "pending" 1 (List.length (Syscall.aio_pending m p));
  let before = Clock.now m.Machine.clock in
  ignore (Syscall.aio_complete m p ~id);
  Alcotest.(check bool) "completion waited" true (Clock.now m.Machine.clock > before);
  Alcotest.(check int) "drained" 0 (List.length (Syscall.aio_pending m p));
  ignore (Syscall.lseek p ~fd ~off:0);
  Alcotest.(check string) "data landed" "async data" (Syscall.read m p ~fd ~len:64)

let test_aio_read_returns_data () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/f" ~create:true in
  ignore (Syscall.write m p ~fd "readable");
  let id = Syscall.aio_read m p ~fd ~off:0 ~len:8 in
  Alcotest.(check string) "read result" "readable" (Syscall.aio_complete m p ~id);
  Alcotest.check_raises "unknown id" (Syscall.Err "EINVAL") (fun () ->
      ignore (Syscall.aio_complete m p ~id:9999))

let test_quiesce_rewinds_sleeping_syscall () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let thr = Process.main_thread p in
  thr.Thread.regs.Thread.rip <- 0x4444;
  thr.Thread.state <- Thread.Sleeping_syscall "read";
  Machine.quiesce m [ p ];
  Alcotest.(check bool) "at boundary" true (thr.Thread.state = Thread.At_boundary);
  Alcotest.(check int) "pc rewound for transparent restart"
    (0x4444 - Thread.syscall_insn_len) thr.Thread.regs.Thread.rip;
  Alcotest.(check int) "restart counted" 1 thr.Thread.syscall_restarts;
  Machine.resume m [ p ];
  Alcotest.(check bool) "running again" true (thr.Thread.state = Thread.Running_user)

let test_quiesce_running_thread_not_rewound () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let thr = Process.main_thread p in
  thr.Thread.regs.Thread.rip <- 0x5555;
  Machine.quiesce m [ p ];
  Alcotest.(check int) "pc untouched" 0x5555 thr.Thread.regs.Thread.rip

let test_anonymous_file () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  let fd = Syscall.open_file m p ~path:"/tmpfile" ~create:true in
  ignore (Syscall.write m p ~fd "temp state");
  Alcotest.(check bool) "unlinked" true (Syscall.unlink m ~path:"/tmpfile");
  let desc = Syscall.fd_exn p fd in
  (match desc.Fdesc.kind with
  | Fdesc.Vnode_file { vn; _ } ->
      Alcotest.(check bool) "anonymous" true (Vnode.is_anonymous vn);
      ignore (Syscall.lseek p ~fd ~off:0);
      Alcotest.(check string) "data still readable" "temp state"
        (Syscall.read m p ~fd ~len:100)
  | _ -> Alcotest.fail "not a file");
  Alcotest.check_raises "name gone" (Syscall.Err "ENOENT") (fun () ->
      ignore (Syscall.open_file m p ~path:"/tmpfile" ~create:false))

let test_pid_virtualization_lookup () =
  let m = machine () in
  let p = Syscall.spawn m ~name:"p" in
  (* Simulate a restore allocating a fresh global pid. *)
  Machine.remove_proc m p.Process.pid_global;
  p.Process.pid_global <- Machine.alloc_pid m;
  Machine.add_proc m p;
  (match Machine.proc_by_local_pid m p.Process.pid_local with
  | Some found -> Alcotest.(check bool) "local pid still resolves" true (found == p)
  | None -> Alcotest.fail "local pid lookup failed");
  Alcotest.(check bool) "signal via local pid" true
    (Syscall.kill m ~pid:p.Process.pid_local ~signo:15)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"file offsets track random read/write sequences" ~count:100
         QCheck.(list_of_size (Gen.int_range 1 30) (string_of_size (Gen.int_range 0 50)))
         (fun chunks ->
           let m = machine () in
           let p = Syscall.spawn m ~name:"p" in
           let fd = Syscall.open_file m p ~path:"/f" ~create:true in
           List.iter (fun s -> ignore (Syscall.write m p ~fd s)) chunks;
           ignore (Syscall.lseek p ~fd ~off:0);
           let expected = String.concat "" chunks in
           Syscall.read m p ~fd ~len:(String.length expected + 10) = expected));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pipes deliver bytes in order" ~count:100
         QCheck.(list_of_size (Gen.int_range 1 20) (string_of_size (Gen.int_range 0 100)))
         (fun chunks ->
           let m = machine () in
           let p = Syscall.spawn m ~name:"p" in
           let rd, wr = Syscall.pipe m p in
           let written =
             List.fold_left (fun acc s -> acc + Syscall.write m p ~fd:wr s) 0 chunks
           in
           let data = Syscall.read m p ~fd:rd ~len:(written + 10) in
           String.length data = written
           && String.sub (String.concat "" chunks) 0 written = data));
  ]

let () =
  Alcotest.run "aurora_kern"
    [
      ( "process",
        [
          Alcotest.test_case "spawn" `Quick test_spawn_and_pid;
          Alcotest.test_case "fork shares offsets" `Quick test_fork_shares_offset;
          Alcotest.test_case "separate opens" `Quick test_separate_open_independent_offset;
          Alcotest.test_case "fork COW memory" `Quick test_fork_cow_memory;
          Alcotest.test_case "exit/wait/SIGCHLD" `Quick test_exit_wait_sigchld;
          Alcotest.test_case "pid virtualization" `Quick test_pid_virtualization_lookup;
        ] );
      ( "files",
        [
          Alcotest.test_case "write/read" `Quick test_file_write_read;
          Alcotest.test_case "missing fails" `Quick test_open_missing_fails;
          Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
          Alcotest.test_case "anonymous file" `Quick test_anonymous_file;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "pipe" `Quick test_pipe_roundtrip;
          Alcotest.test_case "pipe capacity" `Quick test_pipe_capacity;
          Alcotest.test_case "socketpair" `Quick test_socketpair_messages;
          Alcotest.test_case "SCM_RIGHTS" `Quick test_scm_rights_transfers_descriptor;
          Alcotest.test_case "kqueue" `Quick test_kqueue_register;
          Alcotest.test_case "pty" `Quick test_pty_echo_path;
          Alcotest.test_case "posix shm" `Quick test_posix_shm_shared_between_processes;
          Alcotest.test_case "sysv shm" `Quick test_sysv_shm;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "device whitelist" `Quick test_device_whitelist;
          Alcotest.test_case "quiesce rewinds sleeper" `Quick test_quiesce_rewinds_sleeping_syscall;
          Alcotest.test_case "quiesce leaves runner" `Quick test_quiesce_running_thread_not_rewound;
          Alcotest.test_case "aio write" `Quick test_aio_write_and_complete;
          Alcotest.test_case "aio read" `Quick test_aio_read_returns_data;
          Alcotest.test_case "dup2" `Quick test_dup2_replaces_slot;
          Alcotest.test_case "setsid/kill" `Quick test_setsid_and_kill;
          Alcotest.test_case "tcp connect/accept" `Quick test_tcp_connect_accept;
          Alcotest.test_case "spawn thread" `Quick test_spawn_thread;
        ] );
      ("properties", qcheck_tests);
    ]
