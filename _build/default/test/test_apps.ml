module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Striped = Aurora_block.Striped
module Vm_space = Aurora_vm.Vm_space
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Memcached_sim = Aurora_apps.Memcached_sim
module Memcached_bench = Aurora_apps.Memcached_bench
module Redis_sim = Aurora_apps.Redis_sim
module Rocksdb = Aurora_apps.Rocksdb
module Rocksdb_aurora = Aurora_apps.Rocksdb_aurora
module Rocksdb_bench = Aurora_apps.Rocksdb_bench
module Profiles = Aurora_apps.Profiles

let test_memcached_dirty_tracking () =
  let sys = Sls.boot () in
  let app = Memcached_sim.create ~machine:sys.Sls.machine ~nkeys:1600 in
  let p = Memcached_sim.proc app in
  (* Warm and checkpoint so we are in steady state. *)
  for k = 0 to 1599 do
    Memcached_sim.set app k ~value_bytes:100
  done;
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  (* Sixteen keys per page: 32 sets over two pages dirty exactly 2. *)
  for k = 0 to 31 do
    Memcached_sim.set app k ~value_bytes:100
  done;
  let stats = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check int) "dirty pages tracked" 2 stats.Group.pages_flushed

let test_memcached_bench_baseline () =
  let outcome =
    Memcached_bench.run
      {
        Memcached_bench.period_ns = None;
        load = Memcached_bench.Closed_loop 288;
        duration_ns = 50_000_000;
        nkeys = 100_000;
        seed = 11;
        ext_sync = false;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "baseline near 1M ops/s (%.0f)" outcome.Memcached_bench.throughput_ops)
    true
    (outcome.Memcached_bench.throughput_ops > 500_000.0
    && outcome.Memcached_bench.throughput_ops < 2_500_000.0)

let test_memcached_bench_aurora_overhead () =
  let run period_ns =
    Memcached_bench.run
      {
        Memcached_bench.period_ns;
        load = Memcached_bench.Closed_loop 288;
        duration_ns = 50_000_000;
        nkeys = 100_000;
        seed = 11;
        ext_sync = false;
      }
  in
  let base = run None in
  let aurora10 = run (Some 10_000_000) in
  let aurora100 = run (Some 100_000_000) in
  Alcotest.(check bool)
    (Printf.sprintf "10ms period costs throughput (%.0f vs %.0f)"
       aurora10.Memcached_bench.throughput_ops base.Memcached_bench.throughput_ops)
    true
    (aurora10.Memcached_bench.throughput_ops < 0.9 *. base.Memcached_bench.throughput_ops);
  Alcotest.(check bool)
    (Printf.sprintf "longer periods recover throughput (%.0f vs %.0f)"
       aurora100.Memcached_bench.throughput_ops aurora10.Memcached_bench.throughput_ops)
    true
    (aurora100.Memcached_bench.throughput_ops > aurora10.Memcached_bench.throughput_ops);
  Alcotest.(check bool) "checkpoints ran" true (aurora10.Memcached_bench.checkpoints >= 3)

let test_memcached_bench_open_loop_latency () =
  let run period_ns =
    Memcached_bench.run
      {
        Memcached_bench.period_ns;
        load = Memcached_bench.Open_poisson 120_000.0;
        duration_ns = 100_000_000;
        nkeys = 100_000;
        seed = 13;
        ext_sync = false;
      }
  in
  let base = run None in
  let aurora = run (Some 100_000_000) in
  Alcotest.(check bool)
    (Printf.sprintf "baseline avg latency sane (%.0f ns)" base.Memcached_bench.avg_latency_ns)
    true
    (base.Memcached_bench.avg_latency_ns > 30_000.0
    && base.Memcached_bench.avg_latency_ns < 400_000.0);
  Alcotest.(check bool)
    (Printf.sprintf "aurora increases tail latency (%.0f vs %.0f)"
       aurora.Memcached_bench.p95_latency_ns base.Memcached_bench.p95_latency_ns)
    true
    (aurora.Memcached_bench.p95_latency_ns >= base.Memcached_bench.p95_latency_ns)

let test_redis_rdb_breakdown () =
  let m = Machine.create () in
  Machine.mount m (Aurora_kern.Vfs.ram_ops ~clock:m.Machine.clock);
  let redis = Redis_sim.create ~machine:m ~resident_mib:500 () in
  let dev = Striped.create () in
  let b = Redis_sim.rdb_save redis ~dev in
  let ms x = float_of_int x /. 1e6 in
  (* Table 7: fork stop ~8 ms, serialize+write ~300 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "fork stop ~8ms (%.1f)" (ms b.Redis_sim.fork_stop_ns))
    true
    (ms b.Redis_sim.fork_stop_ns > 4.0 && ms b.Redis_sim.fork_stop_ns < 16.0);
  Alcotest.(check bool)
    (Printf.sprintf "serialize ~300ms (%.1f)" (ms b.Redis_sim.serialize_write_ns))
    true
    (ms b.Redis_sim.serialize_write_ns > 200.0 && ms b.Redis_sim.serialize_write_ns < 450.0);
  (* The child was reaped. *)
  Alcotest.(check int) "no zombies" 0 (List.length (Redis_sim.proc redis).Process.children)

let test_rocksdb_put_get () =
  let m = Machine.create () in
  let db = Rocksdb.create ~machine:m ~nkeys:10_000 Rocksdb.Ephemeral in
  ignore (Rocksdb.put db ~key:42 ~value_bytes:300);
  Alcotest.(check (option int)) "stored" (Some 300) (Rocksdb.read_value_size db ~key:42);
  ignore (Rocksdb.get db ~key:42);
  Alcotest.(check (option int)) "missing key" None (Rocksdb.read_value_size db ~key:999)

let test_rocksdb_lsm_machinery () =
  let m = Machine.create () in
  let db =
    Rocksdb.create ~machine:m ~nkeys:100_000 ~memtable_limit:(256 * 1024)
      Rocksdb.Ephemeral
  in
  for key = 0 to 9_999 do
    ignore (Rocksdb.put db ~key ~value_bytes:300)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "flushes happened (%d)" (Rocksdb.flushes db))
    true
    (Rocksdb.flushes db > 5);
  Alcotest.(check bool)
    (Printf.sprintf "compactions happened (%d)" (Rocksdb.compactions db))
    true
    (Rocksdb.compactions db >= 1)

let test_rocksdb_aurora_durability () =
  let sys = Sls.boot () in
  let db = Rocksdb_aurora.create ~sys ~nkeys:10_000 ~wal_group_size:4 () in
  for key = 0 to 99 do
    ignore (Rocksdb_aurora.put db ~key ~value_bytes:(100 + key))
  done;
  (* Only full groups are journaled before the crash; 100 ops at group
     size 4 means all 100 are in the journal. *)
  Sls.crash sys;
  let machine = Machine.create () in
  let store = Aurora_objstore.Store.recover ~dev:sys.Sls.device ~clock:machine.Machine.clock in
  let sys2 = { sys with Sls.machine; store } in
  let db2, replayed = Rocksdb_aurora.recover ~sys:sys2 in
  Alcotest.(check int) "journal replayed all puts" 100 replayed;
  Alcotest.(check (option int)) "value recovered" (Some 142)
    (Rocksdb_aurora.read_value_size db2 ~key:42)

let test_rocksdb_bench_ordering () =
  (* The headline Figure 6 shape: ephemeral fastest by far, the customized
     RocksDB beats the vanilla WAL, and transparent checkpointing costs
     most of the ephemeral throughput. *)
  let run config = (Rocksdb_bench.run config ~ops:60_000 ~nkeys:50_000 ~seed:3).Rocksdb_bench.throughput_ops in
  let none = run Rocksdb_bench.Cfg_none in
  let wal = run Rocksdb_bench.Cfg_wal in
  let aurora_wal = run Rocksdb_bench.Cfg_aurora_wal in
  let transparent = run Rocksdb_bench.Cfg_aurora_100hz in
  Alcotest.(check bool)
    (Printf.sprintf "none (%.0f) > aurora+wal (%.0f)" none aurora_wal)
    true (none > aurora_wal);
  Alcotest.(check bool)
    (Printf.sprintf "aurora+wal (%.0f) > wal (%.0f)" aurora_wal wal)
    true (aurora_wal > wal);
  Alcotest.(check bool)
    (Printf.sprintf "transparent (%.0f) loses most of ephemeral (%.0f)" transparent none)
    true
    (transparent < 0.5 *. none)

let test_memcached_layout () =
  let m = Machine.create () in
  let app = Memcached_sim.create ~machine:m ~nkeys:160 in
  (* Sixteen items per page. *)
  Alcotest.(check int) "arena pages" 10 (Memcached_sim.arena_pages app);
  (* Gets and sets touch without faulting twice. *)
  Memcached_sim.set app 0 ~value_bytes:100;
  Memcached_sim.get app 0;
  let st = Vm_space.stats (Memcached_sim.proc app).Process.space in
  Alcotest.(check bool) "single page faulted" true
    (st.Aurora_vm.Vm_space.zero_fills = 1)

let test_rocksdb_wal_stalls_under_compaction_debt () =
  (* A deep tree (high write amplification) cannot keep up with the write
     rate: compaction debt builds and stalls writers. *)
  let m = Machine.create () in
  let db =
    Rocksdb.create ~machine:m ~nkeys:200_000 ~memtable_limit:(256 * 1024)
      ~compaction_factor:4000 Rocksdb.Ephemeral
  in
  for key = 0 to 49_999 do
    ignore (Rocksdb.put db ~key:(key mod 200_000) ~value_bytes:400)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "write stalls occurred (%d)" (Rocksdb.stalls db))
    true
    (Rocksdb.stalls db > 0)

let test_redis_object_population_drives_criu_cost () =
  let run conns =
    let m = Machine.create () in
    Machine.mount m (Aurora_kern.Vfs.ram_ops ~clock:m.Machine.clock);
    let r = Redis_sim.create ~machine:m ~client_connections:conns ~resident_mib:10 () in
    let b, _ = Aurora_criu.Criu.checkpoint m [ Redis_sim.proc r ] in
    b.Aurora_criu.Criu.os_state_ns
  in
  Alcotest.(check bool) "more connections, more CRIU inference" true
    (run 200 > 2 * run 20)

let test_profiles_build () =
  List.iter
    (fun profile ->
      let sys = Sls.boot () in
      let procs = Profiles.build sys profile in
      Alcotest.(check int)
        (profile.Profiles.app_name ^ " proc count")
        profile.Profiles.nprocs (List.length procs);
      let p = List.hd procs in
      Alcotest.(check bool)
        (profile.Profiles.app_name ^ " has fds")
        true
        (Process.fd_count p >= profile.Profiles.fds - 3);
      Alcotest.(check bool)
        (profile.Profiles.app_name ^ " memory resident")
        true
        (Vm_space.resident_pages p.Process.space > 0))
    [ Profiles.mosh; Profiles.vim ]

let test_profiles_checkpointable () =
  let sys = Sls.boot () in
  let procs = Profiles.build sys Profiles.mosh in
  let group = Sls.attach sys procs in
  let stats = Group.checkpoint ~wait_durable:true group in
  Alcotest.(check bool) "stop time sub-ms for mosh" true (stats.Group.stop_ns < 2_000_000);
  let _sys', result = Sls.reboot_and_restore sys in
  Alcotest.(check int) "restored" 1 (List.length result.Aurora_core.Restore.procs)

let () =
  Alcotest.run "aurora_apps"
    [
      ( "memcached",
        [
          Alcotest.test_case "dirty tracking" `Quick test_memcached_dirty_tracking;
          Alcotest.test_case "baseline throughput" `Slow test_memcached_bench_baseline;
          Alcotest.test_case "aurora overhead" `Slow test_memcached_bench_aurora_overhead;
          Alcotest.test_case "open loop latency" `Slow test_memcached_bench_open_loop_latency;
        ] );
      ("redis", [ Alcotest.test_case "rdb breakdown" `Quick test_redis_rdb_breakdown ]);
      ( "rocksdb",
        [
          Alcotest.test_case "put/get" `Quick test_rocksdb_put_get;
          Alcotest.test_case "lsm machinery" `Quick test_rocksdb_lsm_machinery;
          Alcotest.test_case "aurora durability" `Quick test_rocksdb_aurora_durability;
          Alcotest.test_case "bench ordering" `Slow test_rocksdb_bench_ordering;
        ] );
      ( "internals",
        [
          Alcotest.test_case "memcached layout" `Quick test_memcached_layout;
          Alcotest.test_case "rocksdb stalls" `Quick test_rocksdb_wal_stalls_under_compaction_debt;
          Alcotest.test_case "redis criu scaling" `Quick test_redis_object_population_drives_criu_cost;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "build" `Quick test_profiles_build;
          Alcotest.test_case "checkpointable" `Quick test_profiles_checkpointable;
        ] );
    ]
