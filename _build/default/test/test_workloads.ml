module Rng = Aurora_util.Rng
module Zipf = Aurora_workloads.Zipf
module Mutilate = Aurora_workloads.Mutilate
module Prefix_dist = Aurora_workloads.Prefix_dist
module Link = Aurora_net.Link
module Cost = Aurora_sim.Cost

let test_zipf_bounds () =
  let z = Zipf.create ~n:1000 ~theta:0.99 (Rng.create 1) in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:10_000 ~theta:0.99 (Rng.create 2) in
  let counts = Array.make 10_000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Zipf.sample z in
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 should be far more popular than rank 1000. *)
  Alcotest.(check bool)
    (Printf.sprintf "head heavy (%d vs %d)" counts.(0) counts.(1000))
    true
    (counts.(0) > 20 * max 1 counts.(1000));
  (* The head of the distribution covers a large fraction. *)
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 100) in
  Alcotest.(check bool)
    (Printf.sprintf "top-1%% covers >30%% (%d/%d)" head n)
    true
    (head * 10 > n * 3)

let test_zipf_uniformish_at_zero_theta () =
  let z = Zipf.create ~n:100 ~theta:0.0 (Rng.create 3) in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    counts.(Zipf.sample z) <- counts.(Zipf.sample z) + 1
  done;
  Alcotest.(check bool) "roughly uniform" true
    (counts.(0) < 3 * counts.(99) && counts.(99) < 3 * counts.(0))

let test_mutilate_mix () =
  let w = Mutilate.create ~nkeys:1000 ~get_ratio:0.9 ~seed:4 () in
  let gets = ref 0 and sets = ref 0 in
  for _ = 1 to 20_000 do
    match Mutilate.next w with
    | Mutilate.Get _ -> incr gets
    | Mutilate.Set (_, size) ->
        incr sets;
        Alcotest.(check bool) "value size sane" true (size >= 64 && size <= 512)
  done;
  let ratio = float_of_int !gets /. 20_000.0 in
  Alcotest.(check bool) (Printf.sprintf "get ratio ~0.9 (%.3f)" ratio) true
    (ratio > 0.88 && ratio < 0.92)

let test_prefix_dist_mix () =
  let w = Prefix_dist.create ~nkeys:100_000 ~put_ratio:0.5 ~seed:5 () in
  let puts = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Prefix_dist.next w with
    | Prefix_dist.Db_put (k, _) ->
        incr puts;
        Alcotest.(check bool) "key in range" true (k >= 0 && k < Prefix_dist.nkeys w)
    | Prefix_dist.Db_get k ->
        Alcotest.(check bool) "key in range" true (k >= 0 && k < Prefix_dist.nkeys w)
  done;
  let ratio = float_of_int !puts /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "put ratio ~0.5 (%.3f)" ratio) true
    (ratio > 0.47 && ratio < 0.53)

let test_link_latency () =
  let l = Link.create () in
  let arrival = Link.delivery_time l ~now:0 ~bytes:256 in
  Alcotest.(check bool) "at least one-way latency" true (arrival >= Cost.net_one_way_latency);
  (* Saturating the link queues messages. *)
  let big = 1024 * 1024 in
  let a1 = Link.delivery_time l ~now:1000 ~bytes:big in
  let a2 = Link.delivery_time l ~now:1000 ~bytes:big in
  Alcotest.(check bool) "queueing" true (a2 > a1)

let test_link_rtt () =
  let r = Link.rtt ~bytes:1024 in
  Alcotest.(check bool)
    (Printf.sprintf "rtt order of 50-100us (%d)" r)
    true
    (r > 40_000 && r < 150_000)

let () =
  Alcotest.run "aurora_workloads"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "theta zero" `Quick test_zipf_uniformish_at_zero_theta;
        ] );
      ( "generators",
        [
          Alcotest.test_case "mutilate mix" `Quick test_mutilate_mix;
          Alcotest.test_case "prefix_dist mix" `Quick test_prefix_dist_mix;
        ] );
      ( "net",
        [
          Alcotest.test_case "link latency" `Quick test_link_latency;
          Alcotest.test_case "rtt" `Quick test_link_rtt;
        ] );
    ]
