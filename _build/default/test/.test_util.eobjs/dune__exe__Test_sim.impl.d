test/test_sim.ml: Alcotest Aurora_sim Gen List Option Printf QCheck QCheck_alcotest
