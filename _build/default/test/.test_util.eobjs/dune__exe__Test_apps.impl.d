test/test_apps.ml: Alcotest Aurora_apps Aurora_block Aurora_core Aurora_criu Aurora_kern Aurora_objstore Aurora_sim Aurora_vm List Printf
