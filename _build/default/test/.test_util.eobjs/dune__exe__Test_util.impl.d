test/test_util.ml: Alcotest Array Aurora_util Fun Gen List Printf QCheck QCheck_alcotest String
