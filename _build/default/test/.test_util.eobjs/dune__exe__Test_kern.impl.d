test/test_kern.ml: Alcotest Aurora_kern Aurora_sim Aurora_vm Gen List QCheck QCheck_alcotest String
