test/test_workloads.ml: Alcotest Array Aurora_net Aurora_sim Aurora_util Aurora_workloads Printf
