test/test_criu.ml: Alcotest Aurora_apps Aurora_criu Aurora_kern Aurora_sim Aurora_util Aurora_vm Gen List Printf QCheck QCheck_alcotest
