test/test_criu.mli:
