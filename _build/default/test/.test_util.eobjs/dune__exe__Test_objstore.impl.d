test/test_objstore.ml: Alcotest Aurora_block Aurora_objstore Aurora_sim Bytes Char Gen Hashtbl List Printf QCheck QCheck_alcotest String
