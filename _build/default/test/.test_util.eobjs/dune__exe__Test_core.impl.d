test/test_core.ml: Alcotest Array Aurora_core Aurora_kern Aurora_objstore Aurora_sim Aurora_vm Bytes Gen Hashtbl List Printf QCheck QCheck_alcotest Replayer Str String
