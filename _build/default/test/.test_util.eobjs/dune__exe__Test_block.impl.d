test/test_block.ml: Alcotest Aurora_block Aurora_sim Bytes Char Filename Fun Gen List Printf QCheck QCheck_alcotest String Sys
