test/test_fs.ml: Alcotest Aurora_block Aurora_fs Aurora_kern Aurora_objstore Aurora_sim Aurora_workloads Gen Hashtbl List Option Printf QCheck QCheck_alcotest String
