test/test_vm.ml: Alcotest Aurora_sim Aurora_vm Bytes Char Gen Hashtbl List Printf QCheck QCheck_alcotest String
