(* The `sls` command-line tool (paper Table 2).

   The machines this reproduction runs are simulated in-process.  Without
   --image, each subcommand drives a self-contained scenario on a freshly
   booted machine and demonstrates its verb end to end; with
   `--image PATH` the simulated devices' durable bytes persist in a host
   file, so `sls checkpoint --image app.img` in one invocation and
   `sls ps --image app.img` in the next operate on the same application —
   state genuinely accumulates across runs.  `sls demo` narrates the
   whole lifecycle. *)

open Cmdliner

module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Store = Aurora_objstore.Store
module Units = Aurora_util.Units
module Sls_core = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore
module Api = Aurora_core.Api
module Coredump = Aurora_core.Coredump
module Migrate = Aurora_core.Migrate

(* Persistent machine images: with --image PATH the simulated devices'
   durable bytes live in a host file, so state accumulates across tool
   invocations — checkpoint in one run, list or restore it in the next. *)

let load_image path =
  let device, saved_time = Aurora_block.Striped.load_file path in
  let machine = Machine.create () in
  Clock.advance_to machine.Machine.clock saved_time;
  let store = Store.recover ~dev:device ~clock:machine.Machine.clock in
  (machine, device, store)

let save_image (sys : Sls_core.system) path =
  Aurora_block.Striped.save_file sys.Sls_core.device
    ~clock:sys.Sls_core.machine.Machine.clock path

(* A small workload every subcommand can attach to. *)
let boot_workload ~mem_mib =
  let sys = Sls_core.boot () in
  let app = Syscall.spawn sys.Sls_core.machine ~name:"workload" in
  let npages = mem_mib * Units.mib / Page.logical_size in
  let arena = Syscall.mmap_anon app ~npages in
  let addr = Vm_space.addr_of_entry arena in
  Vm_space.touch_write app.Process.space ~addr ~len:(npages * Page.logical_size);
  Vm_space.write_string app.Process.space ~addr "workload state v1";
  let fd = Syscall.open_file sys.Sls_core.machine app ~path:"/data" ~create:true in
  ignore (Syscall.write sys.Sls_core.machine app ~fd "file contents");
  (sys, app, addr)

let image_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "image" ] ~docv:"PATH"
        ~doc:"Persist the simulated machine image in this host file: state \
              accumulates across invocations.")

let mem_arg =
  Arg.(value & opt int 16 & info [ "m"; "memory" ] ~docv:"MIB" ~doc:"Workload resident set in MiB.")

let period_arg =
  Arg.(value & opt int 10 & info [ "p"; "period" ] ~docv:"MS" ~doc:"Checkpoint period in milliseconds.")

let attach_cmd =
  let run mem period =
    let sys, app, _ = boot_workload ~mem_mib:mem in
    let group = Sls_core.attach ~period_ns:(period * Units.ms) sys [ app ] in
    Group.run_for group (100 * Units.ms);
    Printf.printf
      "attached pid %d at %d ms period; 100 ms of execution produced %d checkpoints\n"
      app.Process.pid_local period
      (List.length (Store.checkpoint_epochs sys.Sls_core.store))
  in
  Cmd.v (Cmd.info "attach" ~doc:"Attach an application to a consistency group.")
    Term.(const run $ mem_arg $ period_arg)

let checkpoint_cmd =
  let run image mem name =
    let sys, app, addr, group =
      match image with
      | Some path when Sys.file_exists path ->
          (* Resume the imaged application and advance its generation. *)
          let machine, device, store = load_image path in
          let result = Restore.restore ~machine ~store () in
          let app = List.hd result.Restore.procs in
          let fs =
            match result.Restore.fs with
            | Some fs -> fs
            | None -> Aurora_fs.Fs.create ~store
          in
          let sys = { Sls_core.machine; device; store; fs } in
          let addr =
            Vm_space.addr_of_entry
              (List.hd
                 (Aurora_vm.Vm_map.entries (Vm_space.map app.Process.space)))
          in
          (sys, app, addr, result.Restore.group)
      | _ ->
          let sys, app, addr = boot_workload ~mem_mib:mem in
          (sys, app, addr, Sls_core.attach sys [ app ])
    in
    let gen_slot = addr + (8 * Page.logical_size) in
    let generation =
      let s = Vm_space.read_string app.Process.space ~addr:gen_slot ~len:8 in
      match int_of_string_opt (String.trim s) with Some g -> g + 1 | None -> 1
    in
    Vm_space.write_string app.Process.space ~addr:gen_slot
      (Printf.sprintf "%7d " generation);
    let stats = Group.checkpoint ~wait_durable:true group in
    (match name with
    | Some n -> Group.name_checkpoint group n
    | None -> ());
    (match image with
    | Some path ->
        save_image sys path;
        Printf.printf "generation %d saved to %s\n" generation path
    | None -> ());
    Printf.printf "checkpoint %d%s: stop %s (os %s, mem %s), %d pages flushed\n"
      stats.Group.epoch
      (match name with Some n -> Printf.sprintf " %S" n | None -> "")
      (Units.ns_to_string stats.Group.stop_ns)
      (Units.ns_to_string stats.Group.os_serialize_ns)
      (Units.ns_to_string stats.Group.mem_mark_ns)
      stats.Group.pages_flushed
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name the checkpoint.")
  in
  Cmd.v (Cmd.info "checkpoint" ~doc:"Manually checkpoint an application.")
    Term.(const run $ image_arg $ mem_arg $ name_arg)

let restore_cmd =
  let run image mem lazy_pages =
    match image with
    | Some path when Sys.file_exists path ->
        let machine, _device, store = load_image path in
        let result = Restore.restore ~machine ~store ~lazy_pages () in
        let app = List.hd result.Restore.procs in
        let addr =
          Vm_space.addr_of_entry
            (List.hd (Aurora_vm.Vm_map.entries (Vm_space.map app.Process.space)))
        in
        Printf.printf "restored pid %d from %s in %s%s; memory reads %S\n"
          app.Process.pid_local path
          (Units.ns_to_string result.Restore.restore_ns)
          (if lazy_pages then " (lazy)" else "")
          (Vm_space.read_string app.Process.space ~addr ~len:17)
    | _ ->
        let sys, app, addr = boot_workload ~mem_mib:mem in
        let group = Sls_core.attach sys [ app ] in
        ignore (Group.checkpoint ~wait_durable:true group);
        print_endline "checkpointed; crashing the machine...";
        let sys', result = Sls_core.reboot_and_restore ~lazy_pages sys in
        ignore sys';
        let app' = List.hd result.Restore.procs in
        Printf.printf "restored pid %d in %s%s; memory reads %S\n"
          app'.Process.pid_local
          (Units.ns_to_string result.Restore.restore_ns)
          (if lazy_pages then " (lazy)" else "")
          (Vm_space.read_string app'.Process.space ~addr ~len:17)
  in
  let lazy_arg =
    Arg.(value & flag & info [ "lazy" ] ~doc:"Lazy restore: page in on demand.")
  in
  Cmd.v (Cmd.info "restore" ~doc:"Crash the machine and restore the last checkpoint.")
    Term.(const run $ image_arg $ mem_arg $ lazy_arg)

let ps_cmd =
  let run image mem =
    let store =
      match image with
      | Some path when Sys.file_exists path ->
          let _machine, _device, store = load_image path in
          store
      | _ ->
          let sys, app, _ = boot_workload ~mem_mib:mem in
          let group = Sls_core.attach ~period_ns:(10 * Units.ms) sys [ app ] in
          Group.run_for group (50 * Units.ms);
          Group.name_checkpoint group "after-50ms";
          sys.Sls_core.store
    in
    Printf.printf "%-8s %s\n" "EPOCH" "OBJECTS";
    List.iter
      (fun epoch ->
        Printf.printf "%-8d %d\n" epoch
          (List.length (Store.objects_at store ~epoch)))
      (Store.checkpoint_epochs store)
  in
  Cmd.v (Cmd.info "ps" ~doc:"List application checkpoints in the store.")
    Term.(const run $ image_arg $ mem_arg)

let suspend_cmd =
  let run mem =
    let sys, app, addr = boot_workload ~mem_mib:mem in
    let group = Sls_core.attach sys [ app ] in
    ignore (Group.checkpoint ~wait_durable:true group);
    Machine.remove_proc sys.Sls_core.machine app.Process.pid_global;
    Printf.printf "suspended pid %d into the store (%d blocks allocated)\n"
      app.Process.pid_local
      (Store.blocks_allocated sys.Sls_core.store);
    (* Resume: restore into the same machine. *)
    let result = Restore.restore ~machine:sys.Sls_core.machine ~store:sys.Sls_core.store () in
    let app' = List.hd result.Restore.procs in
    Printf.printf "resumed pid %d (global %d); state %S\n" app'.Process.pid_local
      app'.Process.pid_global
      (Vm_space.read_string app'.Process.space ~addr ~len:17)
  in
  Cmd.v
    (Cmd.info "suspend" ~doc:"Suspend an application into the store and resume it.")
    Term.(const run $ mem_arg)

let dump_cmd =
  let run mem =
    let sys, app, _ = boot_workload ~mem_mib:mem in
    let group = Sls_core.attach sys [ app ] in
    let stats = Group.checkpoint ~wait_durable:true group in
    print_string (Coredump.dump ~store:sys.Sls_core.store ~epoch:stats.Group.epoch)
  in
  Cmd.v (Cmd.info "dump" ~doc:"Extract a checkpoint as an ELF-style coredump.")
    Term.(const run $ mem_arg)

let send_cmd =
  let run mem =
    let src, app, addr = boot_workload ~mem_mib:mem in
    let group = Sls_core.attach src [ app ] in
    let stats = Group.checkpoint ~wait_durable:true group in
    let stream = Migrate.serialize ~store:src.Sls_core.store ~epoch:stats.Group.epoch in
    Printf.printf "sls send: %s over 10 GbE takes %s\n"
      (Units.bytes_to_string (Migrate.stream_size stream))
      (Units.ns_to_string (Migrate.transfer_time_ns ~bytes:(Migrate.stream_size stream)));
    let dst = Sls_core.boot () in
    let epoch = Migrate.install ~store:dst.Sls_core.store stream in
    let result = Restore.restore ~machine:dst.Sls_core.machine ~store:dst.Sls_core.store ~epoch () in
    let app' = List.hd result.Restore.procs in
    Printf.printf "sls recv: restored on the remote; state %S\n"
      (Vm_space.read_string app'.Process.space ~addr ~len:17)
  in
  Cmd.v
    (Cmd.info "send" ~doc:"Serialize a checkpoint and receive it on a second machine.")
    Term.(const run $ mem_arg)

let journal_cmd =
  let run () =
    let sys, app, _ = boot_workload ~mem_mib:4 in
    let group = Sls_core.attach sys [ app ] in
    let j = Api.sls_journal_open group ~size:Units.mib in
    let clk = sys.Sls_core.machine.Machine.clock in
    let t0 = Clock.now clk in
    Api.sls_journal group j (String.make 4096 'w');
    Printf.printf "sls_journal: one 4 KiB synchronous page in %s (paper: 28 us)\n"
      (Units.ns_to_string (Clock.now clk - t0))
  in
  Cmd.v (Cmd.info "journal" ~doc:"Demonstrate the non-COW journal API.")
    Term.(const run $ const ())

let demo_cmd =
  let run mem period =
    let sys, app, addr = boot_workload ~mem_mib:mem in
    Printf.printf "booted machine; workload pid %d with %d MiB resident\n"
      app.Process.pid_local mem;
    let group = Sls_core.attach ~period_ns:(period * Units.ms) sys [ app ] in
    Group.run_for group (100 * Units.ms);
    Printf.printf "ran 100 ms under transparent persistence: %d checkpoints\n"
      (List.length (Store.checkpoint_epochs sys.Sls_core.store));
    Vm_space.write_string app.Process.space ~addr "workload state v2";
    ignore (Group.checkpoint ~wait_durable:true group);
    Group.name_checkpoint group "v2";
    print_endline "wrote v2 and named a checkpoint; power failure now...";
    let _sys', result = Sls_core.reboot_and_restore sys in
    let app' = List.hd result.Restore.procs in
    Printf.printf "restored in %s; memory reads %S — no application code involved\n"
      (Units.ns_to_string result.Restore.restore_ns)
      (Vm_space.read_string app'.Process.space ~addr ~len:17)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Narrated end-to-end lifecycle.")
    Term.(const run $ mem_arg $ period_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "sls" ~version:"1.0.0"
      ~doc:"The Aurora single level store command line interface (simulated machines)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            demo_cmd;
            attach_cmd;
            checkpoint_cmd;
            restore_cmd;
            ps_cmd;
            suspend_cmd;
            dump_cmd;
            send_cmd;
            journal_cmd;
          ]))
