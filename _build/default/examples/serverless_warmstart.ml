(* Serverless warm starts: checkpoint a function runtime after its costly
   initialization, then restore it at invocation time — lazily, so the
   function starts before its whole image has loaded (the paper's
   serverless use case, sections 1 and 6).
   Run with: dune exec examples/serverless_warmstart.exe *)

module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Units = Aurora_util.Units
module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore

(* A python-ish runtime: importing modules faults in a large heap. *)
let initialize sys =
  let m = sys.Sls.machine in
  let f = Syscall.spawn m ~name:"lambda-runtime" in
  let heap = Syscall.mmap_anon f ~npages:16384 (* 64 MiB of imports *) in
  let addr = Vm_space.addr_of_entry heap in
  let t0 = Clock.now m.Machine.clock in
  Vm_space.touch_write f.Process.space ~addr ~len:(16384 * Page.logical_size);
  (* Interpreter startup, imports, JIT warmup... *)
  Clock.advance m.Machine.clock (180 * Units.ms);
  Vm_space.write_string f.Process.space ~addr "handler-ready";
  (f, addr, Clock.now m.Machine.clock - t0)

let () =
  let sys = Sls.boot () in
  let f, addr, cold_ns = initialize sys in
  Printf.printf "cold start (init + imports): %s\n" (Units.ns_to_string cold_ns);

  (* Snapshot the initialized function once. *)
  let group = Sls.attach sys [ f ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  print_endline "initialized runtime checkpointed";

  (* Each invocation restores from the snapshot — lazily, so only the OS
     state gates the start; pages stream in on demand. *)
  let invoke n =
    let machine = Machine.create () in
    let result =
      Restore.restore ~machine ~store:sys.Sls.store ~lazy_pages:true ()
    in
    let f' = List.hd result.Restore.procs in
    let ready = Vm_space.read_string f'.Process.space ~addr ~len:13 in
    Printf.printf "invocation %d: warm start %s (state %S)\n" n
      (Units.ns_to_string result.Restore.restore_ns)
      ready;
    result.Restore.restore_ns
  in
  let warm1 = invoke 1 in
  let warm2 = invoke 2 in
  Printf.printf "speedup over cold start: %.0fx\n"
    (float_of_int cold_ns /. float_of_int ((warm1 + warm2) / 2))
