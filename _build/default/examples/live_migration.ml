(* Live migration with pre-copy: ship a full checkpoint while the
   application keeps running, then iterate incremental deltas until the
   final (small) stop-and-copy — built from `sls send`/`sls recv`
   primitives (paper sections 3 and 10).
   Run with: dune exec examples/live_migration.exe *)

module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Vm_space = Aurora_vm.Vm_space
module Page = Aurora_vm.Page
module Units = Aurora_util.Units
module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore
module Migrate = Aurora_core.Migrate

let () =
  let src = Sls.boot () in
  let app = Syscall.spawn src.Sls.machine ~name:"stateful-service" in
  let arena = Syscall.mmap_anon app ~npages:8192 (* 32 MiB *) in
  let addr = Vm_space.addr_of_entry arena in
  Vm_space.touch_write app.Process.space ~addr ~len:(8192 * Page.logical_size);
  Vm_space.write_string app.Process.space ~addr "generation-0";
  let group = Sls.attach src [ app ] in

  let dst = Sls.boot () in

  (* Round 1: full checkpoint streams over while the service runs. *)
  let s1 = Group.checkpoint ~wait_durable:true group in
  let full = Migrate.serialize ~store:src.Sls.store ~epoch:s1.Group.epoch in
  Printf.printf "pre-copy round 1: %s over the wire (%s)\n"
    (Units.bytes_to_string (Migrate.stream_size full))
    (Units.ns_to_string (Migrate.transfer_time_ns ~bytes:(Migrate.stream_size full)));

  (* The service keeps mutating during the transfer. *)
  Vm_space.touch_write app.Process.space
    ~addr:(addr + Page.logical_size)
    ~len:(63 * Page.logical_size);
  Vm_space.write_string app.Process.space ~addr "generation-1";

  (* Round 2: only the delta. *)
  let s2 = Group.checkpoint ~wait_durable:true group in
  let delta =
    Migrate.serialize_incremental ~store:src.Sls.store ~base:s1.Group.epoch
      ~epoch:s2.Group.epoch
  in
  Printf.printf "pre-copy round 2 (delta): %s — %.1fx smaller\n"
    (Units.bytes_to_string (Migrate.stream_size delta))
    (float_of_int (Migrate.stream_size full)
    /. float_of_int (max 1 (Migrate.stream_size delta)));

  (* Install both rounds at the destination and resume there. *)
  ignore (Migrate.install ~store:dst.Sls.store full);
  let epoch' = Migrate.install ~store:dst.Sls.store delta in
  Clock.advance dst.Sls.machine.Machine.clock
    (Migrate.transfer_time_ns ~bytes:(Migrate.stream_size delta));
  let result =
    Restore.restore ~machine:dst.Sls.machine ~store:dst.Sls.store ~epoch:epoch' ()
  in
  let app' = List.hd result.Restore.procs in
  Printf.printf "resumed on destination: state %S, restore took %s\n"
    (Vm_space.read_string app'.Process.space ~addr ~len:12)
    (Units.ns_to_string result.Restore.restore_ns)
