examples/kv_persistence.mli:
