examples/quickstart.mli:
