examples/fault_tolerance.ml: Aurora_core Aurora_kern Aurora_objstore Aurora_util Aurora_vm List Printf
