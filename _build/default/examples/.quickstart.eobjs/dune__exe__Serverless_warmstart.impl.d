examples/serverless_warmstart.ml: Aurora_core Aurora_kern Aurora_sim Aurora_util Aurora_vm List Printf
