examples/live_migration.ml: Aurora_core Aurora_kern Aurora_sim Aurora_util Aurora_vm List Printf
