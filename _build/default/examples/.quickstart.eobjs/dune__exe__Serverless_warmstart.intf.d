examples/serverless_warmstart.mli:
