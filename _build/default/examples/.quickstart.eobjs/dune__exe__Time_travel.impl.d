examples/time_travel.ml: Aurora_core Aurora_kern Aurora_objstore Aurora_vm List Printf
