(* Time-travel debugging: the object store retains the application's
   execution history, so any past checkpoint can be inspected (as an
   ELF-style coredump) or restored and resumed — the paper's
   record/rewind use case (sections 3 and 7).
   Run with: dune exec examples/time_travel.exe *)

module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Machine = Aurora_kern.Machine
module Vm_space = Aurora_vm.Vm_space
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore
module Coredump = Aurora_core.Coredump

let () =
  let sys = Sls.boot () in
  let app = Syscall.spawn sys.Sls.machine ~name:"buggy-app" in
  let arena = Syscall.mmap_anon app ~npages:8 in
  let addr = Vm_space.addr_of_entry arena in
  let group = Sls.attach sys [ app ] in

  (* The application runs through three phases; Aurora checkpoints each. *)
  let phase state name =
    Vm_space.write_string app.Process.space ~addr state;
    ignore (Group.checkpoint ~wait_durable:true group);
    Group.name_checkpoint group name;
    Printf.printf "phase %-10s -> checkpoint %S (epoch %d)\n" state name
      (Group.last_epoch group)
  in
  phase "init-ok" "v-init";
  phase "loaded-ok" "v-loaded";
  phase "corrupted!" "v-bug";

  (* The bug manifested in the last phase.  Rewind: restore "v-loaded". *)
  let epoch = List.assoc "v-loaded" (Group.named_checkpoints group) in
  let machine2 = Machine.create () in
  let result = Restore.restore ~machine:machine2 ~store:sys.Sls.store ~epoch () in
  let app' = List.hd result.Restore.procs in
  Printf.printf "\nrewound to \"v-loaded\": memory reads %S\n"
    (Vm_space.read_string app'.Process.space ~addr ~len:9);

  (* Any checkpoint also extracts as a coredump for offline debugging. *)
  let bug_epoch = List.assoc "v-bug" (Group.named_checkpoints group) in
  print_endline "\ncoredump of the buggy checkpoint (sls dump):";
  print_string (Coredump.dump ~store:sys.Sls.store ~epoch:bug_epoch);

  (* History is bounded only by space; prune when done debugging. *)
  let freed = Store.prune_history sys.Sls.store ~keep:1 in
  Printf.printf "\npruned history, freed %d store blocks\n" freed
