(* A key-value store on the Aurora API — the paper's RocksDB recipe
   (section 9.6) in miniature.

   Instead of a log-structured merge tree and its 81k lines of
   persistence code, the store keeps everything in the memtable and uses:
   - sls_journal for synchronous write-ahead durability, and
   - a full Aurora checkpoint whenever the journal fills.

   Recovery is: restore the last checkpoint, replay the journal.
   Run with: dune exec examples/kv_persistence.exe *)

module Units = Aurora_util.Units
module Clock = Aurora_sim.Clock
module Machine = Aurora_kern.Machine
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Rocksdb_aurora = Aurora_apps.Rocksdb_aurora

let () =
  let sys = Sls.boot () in
  let db =
    Rocksdb_aurora.create ~sys ~nkeys:10_000 ~wal_limit:(256 * 1024)
      ~wal_group_size:8 ()
  in
  print_endline "customized KV store: memtable + sls_journal, no LSM tree";

  (* Writes are durable on return — same guarantee as a WAL'd database. *)
  let clk = sys.Sls.machine.Machine.clock in
  let t0 = Clock.now clk in
  for key = 0 to 4_999 do
    ignore (Rocksdb_aurora.put db ~key ~value_bytes:(200 + (key mod 100)))
  done;
  Printf.printf "5000 durable puts in %s (virtual) — %d checkpoints triggered\n"
    (Units.ns_to_string (Clock.now clk - t0))
    (Rocksdb_aurora.checkpoints_triggered db);

  (* Crash.  The store must come back from checkpoint + journal replay. *)
  print_endline "-- crash --";
  Sls.crash sys;
  let machine = Machine.create () in
  let store = Store.recover ~dev:sys.Sls.device ~clock:machine.Machine.clock in
  let sys2 = { sys with Sls.machine; store } in
  let db2, replayed = Rocksdb_aurora.recover ~sys:sys2 in
  Printf.printf "recovered: %d journal records replayed on top of epoch %d\n"
    replayed
    (Store.last_complete_epoch store);
  (* Keys written after the last checkpoint come back through the journal
     replay (earlier ones live in the restored memtable pages). *)
  (match Rocksdb_aurora.read_value_size db2 ~key:4_997 with
  | Some size ->
      Printf.printf "key 4997 -> value of %d bytes (correct: %b)\n" size (size = 297)
  | None -> print_endline "key 4997 lost — this would be a bug");
  print_endline "same write consistency as the WAL, a fraction of the code"
