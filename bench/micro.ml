(* Wall-clock Bechamel microbenchmarks of the real data structures: these
   measure the simulator's own implementation speed (not virtual time),
   demonstrating the hot paths are efficient enough to drive the
   experiments. *)

open Bechamel
open Toolkit

module Clock = Aurora_sim.Clock
module Page = Aurora_vm.Page
module Vm_object = Aurora_vm.Vm_object
module Vm_space = Aurora_vm.Vm_space
module Vm_map = Aurora_vm.Vm_map
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire

let test_page_fault =
  Test.make ~name:"vm fault+write (cold pmap)"
    (Staged.stage (fun () ->
         let clock = Clock.create () in
         let space = Vm_space.create ~clock in
         let e = Vm_space.map_anonymous space ~npages:64 ~prot:Vm_map.prot_rw in
         let addr = Vm_space.addr_of_entry e in
         for i = 0 to 63 do
           Vm_space.write_byte space ~addr:(addr + (i * Page.logical_size)) 'x'
         done))

let test_shadow_collapse =
  Test.make ~name:"shadow + reverse collapse (256 pages)"
    (Staged.stage (fun () ->
         let clock = Clock.create () in
         let base = Vm_object.create Vm_object.Anonymous in
         for i = 0 to 255 do
           Vm_object.insert_page base i (Page.alloc ())
         done;
         let shadow = Vm_object.shadow ~clock base in
         for i = 0 to 15 do
           Vm_object.insert_page shadow i (Page.alloc ())
         done;
         ignore (Vm_object.collapse ~clock ~direction:Vm_object.Aurora_reverse shadow)))

let test_store_checkpoint =
  Test.make ~name:"store checkpoint (64 pages)"
    (Staged.stage (fun () ->
         let clock = Clock.create () in
         let dev = Striped.create () in
         let store = Store.format ~dev ~clock in
         let oid = Store.alloc_oid store in
         ignore (Store.begin_checkpoint store);
         Store.put_object store ~oid ~kind:"bench" ~meta:"m";
         Store.put_pages store ~oid
           (List.init 64 (fun i -> (i, Bytes.make 64 'p')));
         ignore (Store.commit_checkpoint store)))

let test_store_incremental =
  Test.make ~name:"store incremental commit (4k dirty pages)"
    (Staged.stage (fun () ->
         let clock = Clock.create () in
         let dev = Striped.create () in
         let store = Store.format ~dev ~clock in
         let oid = Store.alloc_oid store in
         ignore (Store.begin_checkpoint store);
         Store.put_object store ~oid ~kind:"bench" ~meta:"m";
         Store.put_pages store ~oid
           (List.init 4096 (fun i -> (i, Bytes.make 64 'p')));
         ignore (Store.commit_checkpoint store);
         ignore (Store.begin_checkpoint store);
         Store.put_pages store ~oid
           (List.init 4096 (fun i -> (i, Bytes.make 64 'q')));
         ignore (Store.commit_checkpoint store)))

let test_wire =
  Test.make ~name:"wire serialize+parse (1k ints)"
    (Staged.stage (fun () ->
         let w = Wire.writer () in
         Wire.list w (fun i -> Wire.u64 w i) (List.init 1000 Fun.id);
         let r = Wire.reader (Wire.contents w) in
         ignore (Wire.rlist r Wire.ru64)))

let run () =
  print_endline "Bechamel wall-clock microbenchmarks (simulator hot paths)";
  print_newline ();
  let tests =
    [
      test_page_fault;
      test_shadow_collapse;
      test_store_checkpoint;
      test_store_incremental;
      test_wire;
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-42s %10.0f ns/run\n" name est
        | Some _ | None -> Printf.printf "  %-42s (no estimate)\n" name)
      results
  in
  List.iter
    (fun test -> benchmark (Test.make_grouped ~name:"aurora" ~fmt:"%s %s" [ test ]))
    tests;
  print_newline ();
  (* One instrumented incremental commit, to show what the coalesced flush
     pipeline actually submitted. *)
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let oid = Store.alloc_oid store in
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"bench" ~meta:"m";
  Store.put_pages store ~oid (List.init 4096 (fun i -> (i, Bytes.make 64 'p')));
  ignore (Store.commit_checkpoint store);
  ignore (Store.begin_checkpoint store);
  Store.put_pages store ~oid (List.init 4096 (fun i -> (i, Bytes.make 64 'q')));
  ignore (Store.commit_checkpoint store);
  let fs = Store.flush_stats store in
  Printf.printf
    "  flush stats (4k-page incremental commit): %d extents (%d blocks), %d \
     device submissions, leaf cache %d hits / %d misses, %d alloc calls\n"
    fs.Store.fs_extents fs.Store.fs_extent_blocks fs.Store.fs_dev_writes
    fs.Store.fs_leaf_hits fs.Store.fs_leaf_misses fs.Store.fs_alloc_calls;
  print_newline ()
