(* HTTP serving tier under continuous checkpointing: SLO tail latency
   (p50/p99/p999) versus checkpoint period, figures 4-5 style.

   Each configuration (conns x route mix) runs an identical open-loop
   zipfian schedule three ways: uncheckpointed baseline, stop-the-world
   checkpointing, and speculative soft-quiesce — the latter keeps serving
   background dynamic requests inside yield windows via the run hook.

   Emits BENCH_http.json.

     dune exec bench/http_sim.exe          # full sweep
     dune exec bench/http_sim.exe smoke    # tiny CI pass with SLO gates *)

module Http_sim = Aurora_apps.Http_sim
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

type arm = { a_name : string; a_period : int option; a_spec : bool }

type sample = {
  s_conns : int;
  s_dyn_ratio : float;
  s_arm : string;
  s_period : int option;
  s_out : Http_sim.outcome;
}

let base_cfg ~duration_ns ~rate =
  { Http_sim.default_config with duration_ns; rate }

let measure ~duration_ns ~rate ~conns ~dynamic_ratio arms =
  List.map
    (fun a ->
      let cfg =
        {
          (base_cfg ~duration_ns ~rate) with
          Http_sim.conns;
          dynamic_ratio;
          period_ns = a.a_period;
          speculative = a.a_spec;
        }
      in
      {
        s_conns = conns;
        s_dyn_ratio = dynamic_ratio;
        s_arm = a.a_name;
        s_period = a.a_period;
        s_out = Http_sim.run cfg;
      })
    arms

let period_str = function
  | None -> "-"
  | Some p -> Units.ns_to_string p

let print_samples samples =
  let table =
    Text_table.create
      ~header:
        [
          "conns"; "dyn%"; "arm"; "period"; "req"; "rps"; "p50"; "p99"; "p999";
          "max"; "stop avg"; "reconn"; "hook ops";
        ]
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.s_conns;
          Printf.sprintf "%.0f" (s.s_dyn_ratio *. 100.0);
          s.s_arm;
          period_str s.s_period;
          string_of_int s.s_out.Http_sim.completed;
          Printf.sprintf "%.0f" s.s_out.Http_sim.throughput_rps;
          Units.ns_to_string (int_of_float s.s_out.Http_sim.p50_ns);
          Units.ns_to_string (int_of_float s.s_out.Http_sim.p99_ns);
          Units.ns_to_string (int_of_float s.s_out.Http_sim.p999_ns);
          Units.ns_to_string (int_of_float s.s_out.Http_sim.max_ns);
          Units.ns_to_string (int_of_float s.s_out.Http_sim.avg_stop_ns);
          string_of_int s.s_out.Http_sim.reconnects;
          string_of_int s.s_out.Http_sim.hook_ops;
        ])
    samples;
  Text_table.print table

let json_of_samples samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"bench\": \"http_sim\",\n  \"samples\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      let o = s.s_out in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"conns\": %d, \"dynamic_ratio\": %.2f, \"arm\": \"%s\", \
            \"period_ns\": %d, \"completed\": %d, \"throughput_rps\": %.0f, \
            \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f, \
            \"max_ns\": %.0f, \"checkpoints\": %d, \"avg_stop_ns\": %.0f, \
            \"hook_ops\": %d, \"reconnects\": %d}"
           s.s_conns s.s_dyn_ratio s.s_arm
           (match s.s_period with None -> 0 | Some p -> p)
           o.Http_sim.completed o.Http_sim.throughput_rps o.Http_sim.p50_ns
           o.Http_sim.p99_ns o.Http_sim.p999_ns o.Http_sim.max_ns
           o.Http_sim.checkpoints o.Http_sim.avg_stop_ns o.Http_sim.hook_ops
           o.Http_sim.reconnects))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let find samples ~arm ~period =
  List.find
    (fun s -> s.s_arm = arm && s.s_period = period)
    samples

(* SLO gates over the base configuration:
   - at the paper's 100 ms period, STW p99 inflation over the
     uncheckpointed baseline must stay <= 2x;
   - at the shortest period, the speculative arm must beat STW on p999
     by >= 3x (the stall dominates the extreme tail there). *)
let gate samples ~long_period ~short_period =
  let ok = ref true in
  let base = find samples ~arm:"none" ~period:None in
  let stw100 = find samples ~arm:"stw" ~period:(Some long_period) in
  let infl =
    stw100.s_out.Http_sim.p99_ns /. Float.max 1.0 base.s_out.Http_sim.p99_ns
  in
  Printf.printf "gate: p99 inflation at %s period: %.2fx (need <= 2x)\n"
    (Units.ns_to_string long_period) infl;
  if infl > 2.0 then begin
    Printf.eprintf "http-sim: FAIL: p99 inflation %.2fx > 2x at %s period\n"
      infl
      (Units.ns_to_string long_period);
    ok := false
  end;
  let stw_s = find samples ~arm:"stw" ~period:(Some short_period) in
  let spec_s = find samples ~arm:"spec" ~period:(Some short_period) in
  let gain =
    stw_s.s_out.Http_sim.p999_ns /. Float.max 1.0 spec_s.s_out.Http_sim.p999_ns
  in
  Printf.printf "gate: speculative p999 advantage at %s period: %.2fx (need >= 3x)\n"
    (Units.ns_to_string short_period) gain;
  if gain < 3.0 then begin
    Printf.eprintf
      "http-sim: FAIL: speculative p999 only %.2fx better than STW at %s \
       period (need >= 3x)\n"
      gain
      (Units.ns_to_string short_period);
    ok := false
  end;
  !ok

let run ~duration_ns ~rate ~conn_sweep ~mix_sweep ~periods =
  print_endline
    "http-sim: event-loop HTTP/1.1 tier under continuous checkpointing";
  print_endline
    "  (open-loop zipf client; latency = send to response back at the client)";
  print_newline ();
  let long_period = List.fold_left max 0 periods in
  let short_period = List.fold_left min max_int periods in
  let arms =
    { a_name = "none"; a_period = None; a_spec = false }
    :: List.concat_map
         (fun p ->
           [
             { a_name = "stw"; a_period = Some p; a_spec = false };
             { a_name = "spec"; a_period = Some p; a_spec = true };
           ])
         periods
  in
  let base_conns = List.hd conn_sweep in
  let base_mix = List.hd mix_sweep in
  (* The full arm matrix runs on the base configuration; the conns and
     route-mix sweeps run the checkpointed arms at the paper period. *)
  let samples =
    measure ~duration_ns ~rate ~conns:base_conns ~dynamic_ratio:base_mix arms
  in
  let extra =
    List.concat_map
      (fun conns ->
        if conns = base_conns then []
        else
          measure ~duration_ns ~rate ~conns ~dynamic_ratio:base_mix
            [
              { a_name = "stw"; a_period = Some long_period; a_spec = false };
              { a_name = "spec"; a_period = Some long_period; a_spec = true };
            ])
      conn_sweep
    @ List.concat_map
        (fun mix ->
          if mix = base_mix then []
          else
            measure ~duration_ns ~rate ~conns:base_conns ~dynamic_ratio:mix
              [
                { a_name = "stw"; a_period = Some long_period; a_spec = false };
                { a_name = "spec"; a_period = Some long_period; a_spec = true };
              ])
        mix_sweep
  in
  let all = samples @ extra in
  print_samples all;
  print_newline ();
  let out = open_out "BENCH_http.json" in
  output_string out (json_of_samples all);
  close_out out;
  print_endline "wrote BENCH_http.json";
  let ok = gate samples ~long_period ~short_period in
  if not ok then exit 1;
  print_endline
    "acceptance: p99 inflation <= 2x at the paper period, speculative p999 \
     >= 3x better than STW at the shortest period"

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "smoke" ] ->
      run ~duration_ns:300_000_000 ~rate:20_000.0 ~conn_sweep:[ 384 ]
        ~mix_sweep:[ 0.3 ] ~periods:[ 100_000_000; 5_000_000 ]
  | _ ->
      run ~duration_ns:400_000_000 ~rate:30_000.0 ~conn_sweep:[ 384; 512 ]
        ~mix_sweep:[ 0.3; 0.7 ] ~periods:[ 100_000_000; 20_000_000; 5_000_000 ]
