(* Speculative soft-quiesce A/B: stop-window time, STW vs speculative.

   A memcached-shaped service — a key arena plus many per-connection
   sockets whose buffers must be serialized every cycle — checkpoints at
   100 Hz while a mutilate-style zipfian client mutates a sweep of
   arena fractions per interval.  Each configuration runs the identical
   deterministic foreground trace twice:

   - STW: the classic cycle; the OS serialize pass runs inside the stop
     window, so every connection's fd costs stop time;
   - speculative: the serialize pass and page harvest run concurrently
     with execution on a spare core (a run hook keeps serving requests
     whenever a soft-quiesce yield window opens), and the stop window
     shrinks to quiesce + conflict validation.

   The speculative arm also reports the requests the hook served *during*
   checkpointing — application progress the STW arm forfeits — and the
   conflict set the validator re-copied.  A separate hookless pair run
   checks byte-identity: a speculative epoch followed by a forced-full
   one with no intervening ops must hold identical objects, metadata and
   page checksums.

   Emits BENCH_ckpt_spec.json.

     dune exec bench/ckpt_spec.exe          # full sweep
     dune exec bench/ckpt_spec.exe smoke    # tiny CI pass (>= 5x gate) *)

module Clock = Aurora_sim.Clock
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Store = Aurora_objstore.Store
module Serial = Aurora_core.Serial
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Memcached = Aurora_apps.Memcached_sim
module Mutilate = Aurora_workloads.Mutilate
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

type side = {
  s_stop_ns : float;
  s_quiesce_ns : float;
  s_serialize_ns : float;  (** in-stop for STW; spare-core busy for spec *)
  s_speculate_ns : float;
  s_validate_ns : float;
  s_conflict_objects : float;
  s_conflict_pages : float;
  s_hook_ops : float;  (** requests served inside soft-quiesce windows *)
}

type sample = { conns : int; npages : int; rate : float; stw : side; spec : side }

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))
let avgi f stats = avg (List.map (fun s -> float_of_int (f s)) stats)

let serve mc mut =
  match Mutilate.next mut with
  | Mutilate.Get k -> Memcached.get mc k
  | Mutilate.Set (k, v) -> Memcached.set mc k ~value_bytes:v

let run_arm ~speculative ~conns ~nkeys ~rate ~intervals =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let mc = Memcached.create ~machine:m ~nkeys in
  let p = Memcached.proc mc in
  let socks = Array.init conns (fun _ -> Syscall.socketpair m p) in
  let group = Sls.attach sys [ p ] in
  if speculative then Group.set_speculative group true;
  let period = Group.period_ns group in
  let clk = m.Aurora_kern.Machine.clock in
  let hook_ops = ref 0 in
  if speculative then begin
    (* The service keeps answering requests whenever the soft serialize
       pass yields: every window serves as many ops as its duration
       allows, each marking a connection socket — exactly the mutation
       stream the validator must splice. *)
    let hmut = Mutilate.create ~nkeys ~get_ratio:0.5 ~seed:13 () in
    let hsock = ref 0 in
    Aurora_kern.Machine.set_run_hook m
      (Some
         (fun ns ->
           let budget = min 64 (ns / (4 * Memcached.base_service_ns)) in
           for _ = 1 to max 1 budget do
             incr hook_ops;
             serve mc hmut;
             incr hsock;
             ignore
               (Syscall.write m p ~fd:(fst socks.(!hsock mod conns)) "h")
           done))
  end;
  ignore (Group.checkpoint ~wait_durable:true group);
  let mut = Mutilate.create ~nkeys ~get_ratio:0.5 ~seed:7 () in
  let npages = Memcached.arena_pages mc in
  (* ~2 ops per target dirty page: the zipfian mix is half sets. *)
  let nreq = max 2 (int_of_float (2.0 *. rate *. float_of_int npages)) in
  let t0 = Clock.now clk in
  let stats = ref [] in
  for i = 1 to intervals do
    for _ = 1 to nreq do
      serve mc mut
    done;
    (* Per-request connection activity: every socket buffer is dirty by
       checkpoint time, as a loaded server's would be. *)
    Array.iter (fun (a, _) -> ignore (Syscall.write m p ~fd:a "x")) socks;
    Clock.advance_to clk (t0 + (i * period));
    stats := Group.checkpoint group :: !stats
  done;
  Store.wait_durable sys.Sls.store;
  Aurora_kern.Machine.set_run_hook m None;
  let st = !stats in
  {
    s_stop_ns = avgi (fun s -> s.Group.stop_ns) st;
    s_quiesce_ns = avgi (fun s -> s.Group.quiesce_ns) st;
    s_serialize_ns = avgi (fun s -> s.Group.os_serialize_ns) st;
    s_speculate_ns = avgi (fun s -> s.Group.speculate_ns) st;
    s_validate_ns = avgi (fun s -> s.Group.validate_ns) st;
    s_conflict_objects = avgi (fun s -> s.Group.conflict_objects) st;
    s_conflict_pages = avgi (fun s -> s.Group.conflict_pages) st;
    s_hook_ops = float_of_int !hook_ops /. float_of_int intervals;
  }

let measure ~conns ~nkeys ~rate ~intervals =
  let stw = run_arm ~speculative:false ~conns ~nkeys ~rate ~intervals in
  let spec = run_arm ~speculative:true ~conns ~nkeys ~rate ~intervals in
  {
    conns;
    npages = (nkeys + 15) / 16;
    rate;
    stw;
    spec;
  }

(* Byte-identity: same world, no hook; a speculative epoch and a forced
   full one with no ops in between must be indistinguishable. *)
let identity_check ~conns ~nkeys =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let mc = Memcached.create ~machine:m ~nkeys in
  let p = Memcached.proc mc in
  let socks = Array.init conns (fun _ -> Syscall.socketpair m p) in
  let group = Sls.attach sys [ p ] in
  ignore (Group.checkpoint ~wait_durable:true group);
  let mut = Mutilate.create ~nkeys ~get_ratio:0.3 ~seed:99 () in
  for _ = 1 to 2 do
    for _ = 1 to 40 do
      serve mc mut
    done;
    Array.iter (fun (a, _) -> ignore (Syscall.write m p ~fd:a "i")) socks;
    ignore (Group.checkpoint ~wait_durable:true ~speculative:true group)
  done;
  let c1 = Group.checkpoint ~wait_durable:true ~speculative:true group in
  let c2 = Group.checkpoint ~wait_durable:true ~full:true group in
  let store = sys.Sls.store in
  let e1 = c1.Group.epoch and e2 = c2.Group.epoch in
  let objs1 = Store.objects_at store ~epoch:e1 in
  let objs2 = Store.objects_at store ~epoch:e2 in
  objs1 = objs2
  && List.for_all
       (fun (oid, kind) ->
         kind = Serial.kind_manifest
         || Store.read_meta store ~epoch:e1 ~oid
              = Store.read_meta store ~epoch:e2 ~oid
            && Store.page_crcs store ~epoch:e1 ~oid
               = Store.page_crcs store ~epoch:e2 ~oid)
       objs2

let json_of_samples samples ~identity =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"bench\": \"ckpt_spec\",\n  \"byte_identity\": %b,\n  \"configs\": [\n"
       identity);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"conns\": %d, \"npages\": %d, \"mutation_rate\": %.4f, \
            \"stw\": {\"stop_ns\": %.0f, \"quiesce_ns\": %.0f, \
            \"serialize_ns\": %.0f}, \"spec\": {\"stop_ns\": %.0f, \
            \"quiesce_ns\": %.0f, \"speculate_ns\": %.0f, \"validate_ns\": \
            %.0f, \"spare_core_ns\": %.0f, \"conflict_objects\": %.1f, \
            \"conflict_pages\": %.1f, \"hook_ops_per_ckpt\": %.1f}, \
            \"stop_reduction\": %.2f}"
           s.conns s.npages s.rate s.stw.s_stop_ns s.stw.s_quiesce_ns
           s.stw.s_serialize_ns s.spec.s_stop_ns s.spec.s_quiesce_ns
           s.spec.s_speculate_ns s.spec.s_validate_ns s.spec.s_serialize_ns
           s.spec.s_conflict_objects s.spec.s_conflict_pages s.spec.s_hook_ops
           (s.stw.s_stop_ns /. Float.max 1.0 s.spec.s_stop_ns)))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let run ~configs ~intervals =
  print_endline
    "ckpt-spec: speculative soft-quiesce vs stop-the-world, 100 Hz stop window";
  print_endline
    "  (identical foreground trace; the speculative arm also serves requests \
     inside the window)";
  print_newline ();
  let samples =
    List.map
      (fun (conns, nkeys, rate) -> measure ~conns ~nkeys ~rate ~intervals)
      configs
  in
  let table =
    Text_table.create
      ~header:
        [
          "conns";
          "pages";
          "mutation";
          "stw stop";
          "spec stop";
          "reduction";
          "speculate";
          "validate";
          "conflicts";
          "ops-in-ckpt";
        ]
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.conns;
          string_of_int s.npages;
          Printf.sprintf "%.0f%%" (s.rate *. 100.0);
          Units.ns_to_string (int_of_float s.stw.s_stop_ns);
          Units.ns_to_string (int_of_float s.spec.s_stop_ns);
          Printf.sprintf "%.1fx" (s.stw.s_stop_ns /. Float.max 1.0 s.spec.s_stop_ns);
          Units.ns_to_string (int_of_float s.spec.s_speculate_ns);
          Units.ns_to_string (int_of_float s.spec.s_validate_ns);
          Printf.sprintf "%.1f obj/%.1f pg" s.spec.s_conflict_objects
            s.spec.s_conflict_pages;
          Printf.sprintf "%.1f" s.spec.s_hook_ops;
        ])
    samples;
  Text_table.print table;
  print_newline ();
  let conns, nkeys, _ = List.hd configs in
  let identity = identity_check ~conns:(min conns 16) ~nkeys in
  Printf.printf "byte-identity (speculative vs forced-full): %s\n"
    (if identity then "OK" else "MISMATCH");
  let out = open_out "BENCH_ckpt_spec.json" in
  output_string out (json_of_samples samples ~identity);
  close_out out;
  print_endline "wrote BENCH_ckpt_spec.json";
  (* Acceptance gate: at <= 1% mutation the speculative stop window must
     be >= 5x shorter than stop-the-world, and the speculative image must
     be byte-identical to a forced-full one. *)
  if not identity then begin
    prerr_endline "ckpt-spec: FAIL: speculative epoch differs from forced-full";
    exit 1
  end;
  List.iter
    (fun s ->
      if s.rate <= 0.011 then begin
        let reduction = s.stw.s_stop_ns /. Float.max 1.0 s.spec.s_stop_ns in
        if reduction < 5.0 then begin
          Printf.eprintf
            "ckpt-spec: FAIL: 1%%-mutation stop_ns reduction %.2fx (need >= 5x)\n"
            reduction;
          exit 1
        end
      end)
    samples;
  print_endline
    "acceptance: >= 5x stop-window reduction at 1% mutation, byte-identical \
     image"

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "smoke" ] ->
      run ~configs:[ (384, 8192, 0.01); (384, 8192, 0.10) ] ~intervals:4
  | _ ->
      run
        ~configs:
          [
            (384, 16384, 0.01);
            (384, 16384, 0.05);
            (384, 16384, 0.10);
            (384, 16384, 0.25);
            (512, 16384, 0.01);
            (512, 16384, 0.05);
          ]
        ~intervals:8
