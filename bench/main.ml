(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 9), plus the design ablations and a set of
   wall-clock microbenchmarks.

     dune exec bench/main.exe            # everything except micro
     dune exec bench/main.exe table5 fig3
     dune exec bench/main.exe micro      # Bechamel wall-clock runs *)

let artifacts =
  [
    ("table1", "CRIU checkpoint breakdown (500 MB Redis)", Table1.run);
    ("table4", "POSIX object checkpoint/restore times", Table4.run);
    ("table5", "memory-object stop times (incremental/atomic/journal)", Table5.run);
    ("table6", "application checkpoint and restore times", Table6.run);
    ("table7", "Aurora vs CRIU vs RDB", Table7.run);
    ("fig3", "FileBench: Aurora FS vs ZFS vs FFS", Fig3.run);
    ("fig4", "Memcached max throughput vs checkpoint period", Fig4.run);
    ("fig5", "Memcached latency at fixed 120 kops/s", Fig5.run);
    ("fig6", "RocksDB configurations", Fig6.run);
    ("ablate", "design-choice ablations", Ablate.run);
    ("ext-sync", "external synchrony cost (paper section 8 caveat)", Extsync_bench.run);
    ("flush-scale", "coalesced flush pipeline vs dirty-set size", fun () -> Flush_scale.run ());
  ]

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) artifacts with
  | Some (_, _, f) ->
      f ();
      true
  | None -> (
      match name with
      | "micro" ->
          Micro.run ();
          true
      | "smoke" ->
          (* Tiny-parameter pass over the bench machinery (the bench-smoke
             dune alias): exercises the flush-scale sweep and the micro
             harness quickly enough for CI. *)
          Flush_scale.run ~sizes:[ 256; 1024 ] ();
          Micro.run ();
          true
      | _ -> false)

let usage () =
  print_endline "usage: main.exe [artifact...]";
  print_endline "artifacts:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-8s %s\n" n d) artifacts;
  print_endline "  micro    Bechamel wall-clock microbenchmarks";
  print_endline "  smoke    tiny-parameter smoke pass (dune build @bench-smoke)"

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      print_endline "=== Aurora single level store: paper evaluation suite ===";
      print_newline ();
      List.iter (fun (_, _, f) -> f ()) artifacts
  | _ :: names ->
      let ok = List.for_all run_one names in
      if not ok then begin
        usage ();
        exit 1
      end
  | [] -> usage ()
