(* Crash-consistency torture sweep driver.

   `torture_sweep fast` (the @torture alias, wired into runtest) runs the
   standard-workload crash-point enumeration plus small randomized fault
   sweeps; `torture_sweep deep [seed]` (@torture-deep) adds random-workload
   enumerations and much larger sweeps.  Exit status is nonzero on any
   enumeration failure, and every run prints the seeds involved so a
   failure reproduces by rerunning with the same arguments. *)

module Workload = Aurora_faultsim.Workload
module Injector = Aurora_faultsim.Injector
module Torture = Aurora_faultsim.Torture
module Rng = Aurora_util.Rng

let enumeration_ok = ref true

(* [floor] is the checked-in coverage floor: a recorded profile that
   shrinks below it (a recorder regression silently emitting fewer
   device-submission boundaries) fails the sweep even with zero crash
   failures. *)
let run_enumeration ?floor label ops =
  let r = Torture.enumerate ops in
  Printf.printf "enumerate %-18s %4d boundaries, %5d crash points, %d failures\n%!"
    label r.Torture.r_boundaries r.Torture.r_crash_points
    (List.length r.Torture.r_failures);
  List.iter
    (fun f -> Printf.printf "  FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  if r.Torture.r_failures <> [] then enumeration_ok := false;
  (match floor with
  | Some f when r.Torture.r_boundaries < f ->
      Printf.printf
        "  FAIL %s: coverage regressed to %d boundaries (floor %d)\n%!" label
        r.Torture.r_boundaries f;
      enumeration_ok := false
  | _ -> ())

(* Two small per-tenant workloads, deterministic so the boundary/crash-point
   counts below are stable run to run.  Kept shorter than [standard]: the
   pair enumeration replays the combined workload once per crash point. *)
let pair_workloads ~seed =
  let gen s = Workload.gen_ops (Rng.create s) ~n:8 ~max_oid:4 ~max_pages:10 in
  (gen seed, gen (seed lxor 0x5f5f))

let run_pair_enumeration label (ops_a, ops_b) =
  let r = Torture.enumerate_pair ops_a ops_b in
  Printf.printf
    "enumerate %-18s %4d boundaries, %5d crash points, %d failures\n%!" label
    r.Torture.r_boundaries r.Torture.r_crash_points
    (List.length r.Torture.r_failures);
  List.iter
    (fun f -> Printf.printf "  FAIL %s\n%!" (Torture.pp_failure f))
    r.Torture.r_failures;
  if r.Torture.r_failures <> [] then enumeration_ok := false

let run_sweep label ~seed ~runs profile =
  let s = Torture.sweep ~seed ~runs profile in
  Printf.printf
    "sweep %-16s seed=%-6d runs=%-3d match=%d detected=%d degraded=%d read_faults=%d\n%!"
    label seed runs s.Torture.s_final_matches s.Torture.s_detected
    s.Torture.s_degraded s.Torture.s_read_faults

(* Coverage floors for the kernel-driven recorded profiles (ISSUE 10).
   Measured at recording defaults (fork_bomb seed 11/6 epochs, shm_ring
   seed 23/8 epochs); a drop below means the recorder stopped exercising
   part of the surface. *)
let fork_bomb_floor = 60
let shm_ring_floor = 40

let fast () =
  run_enumeration "standard" Workload.standard;
  run_enumeration "standard-spec" (Workload.speculative_arm Workload.standard);
  (let fb = Workload.fork_bomb () in
   run_enumeration ~floor:fork_bomb_floor "fork-bomb" fb;
   run_enumeration ~floor:fork_bomb_floor "fork-bomb-spec"
     (Workload.speculative_arm fb));
  (let ring = Workload.shm_ring () in
   run_enumeration ~floor:shm_ring_floor "shm-ring" ring;
   run_enumeration ~floor:shm_ring_floor "shm-ring-spec"
     (Workload.speculative_arm ring));
  (let a, b = pair_workloads ~seed:20260809 in
   run_pair_enumeration "two-group" (a, b);
   run_pair_enumeration "two-group-spec"
     (Workload.speculative_arm a, Workload.speculative_arm b));
  run_sweep "read-errors" ~seed:42 ~runs:4 (Injector.read_errors_profile 0.05);
  run_sweep "write-loss" ~seed:42 ~runs:4 (Injector.write_loss_profile 0.1)

let deep seed =
  run_enumeration "standard" Workload.standard;
  run_enumeration "standard-spec" (Workload.speculative_arm Workload.standard);
  for i = 0 to 2 do
    let fb = Workload.fork_bomb ~seed:(seed + i) ~epochs:7 () in
    run_enumeration (Printf.sprintf "fork-bomb(seed=%d)" (seed + i)) fb;
    let ring = Workload.shm_ring ~seed:(seed + i) ~epochs:10 () in
    run_enumeration (Printf.sprintf "shm-ring(seed=%d)" (seed + i)) ring;
    run_enumeration
      (Printf.sprintf "shm-ring-spec(seed=%d)" (seed + i))
      (Workload.speculative_arm ring)
  done;
  for i = 0 to 2 do
    let rng = Rng.create (seed + i) in
    let ops = Workload.gen_ops rng ~n:10 ~max_oid:5 ~max_pages:12 in
    run_enumeration (Printf.sprintf "random(seed=%d)" (seed + i)) ops;
    run_enumeration
      (Printf.sprintf "random-spec(seed=%d)" (seed + i))
      (Workload.speculative_arm ops)
  done;
  run_sweep "read-errors" ~seed ~runs:25 (Injector.read_errors_profile 0.1);
  run_sweep "write-loss" ~seed ~runs:25 (Injector.write_loss_profile 0.15);
  run_sweep "mixed"
    ~seed:(seed + 17) ~runs:25
    {
      Injector.p_drop = 0.03;
      p_torn = 0.03;
      p_delay = 0.1;
      max_delay_ns = 200_000;
      p_read_fail = 0.05;
      p_flip = 0.0;
    }

let () =
  (match Array.to_list Sys.argv with
  | _ :: "fast" :: _ | [ _ ] -> fast ()
  | _ :: "deep" :: rest ->
      let seed = match rest with s :: _ -> int_of_string s | [] -> 20260807 in
      deep seed
  | _ ->
      prerr_endline "usage: torture_sweep [fast | deep [seed]]";
      exit 2);
  if not !enumeration_ok then begin
    prerr_endline "torture_sweep: crash-point enumeration found failures";
    exit 1
  end
