(* Checkpoint-pipeline observability report: run the standard 100 Hz
   workload with tracing and metrics on, print per-phase latency
   percentiles (virtual time), check the span accounting identity (an
   epoch's children sum to the epoch), and dump the Chrome trace of the
   run to OBS_trace.json plus the final epoch's text timeline. *)

module Clock = Aurora_sim.Clock
module Process = Aurora_kern.Process
module Syscall = Aurora_kern.Syscall
module Vm_space = Aurora_vm.Vm_space
module Group = Aurora_core.Group
module Sls = Aurora_core.Sls
module Trace = Aurora_obs.Trace
module Metrics = Aurora_obs.Metrics
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let run_workload ~epochs =
  let sys = Sls.boot () in
  let machine = sys.Sls.machine in
  let clk = machine.Aurora_kern.Machine.clock in
  let p1 = Syscall.spawn machine ~name:"app" in
  let p2 = Syscall.spawn machine ~name:"worker" in
  let _rd, wr = Syscall.pipe machine p1 in
  let mem1 = Syscall.mmap_anon p1 ~npages:64 in
  let mem2 = Syscall.mmap_anon p2 ~npages:32 in
  let addr1 = Vm_space.addr_of_entry mem1 in
  let addr2 = Vm_space.addr_of_entry mem2 in
  let group = Sls.attach sys [ p1; p2 ] in
  let period = Group.period_ns group in
  Trace.enable ~capacity:(1 lsl 18) ~clock:clk ();
  Metrics.reset ();
  Metrics.set_enabled true;
  let t0 = Clock.now clk in
  let last = ref None in
  for i = 1 to epochs do
    (* Second half of the run: speculative soft-quiesce epochs, so the
       report covers both cycle shapes. *)
    if i = (epochs / 2) + 1 then Group.set_speculative group true;
    (* Application activity for this interval: pipe traffic plus a
       sliding window of dirtied pages. *)
    ignore (Syscall.write machine p1 ~fd:wr (String.make 200 'x'));
    Vm_space.touch_write p1.Process.space
      ~addr:(addr1 + (i mod 16 * 4096))
      ~len:(8 * 4096);
    Vm_space.touch_write p2.Process.space
      ~addr:(addr2 + (i mod 8 * 4096))
      ~len:(4 * 4096);
    Clock.advance_to clk (t0 + (i * period));
    last := Some (Group.checkpoint group)
  done;
  Metrics.set_enabled false;
  (group, Option.get !last)

(* Virtual duration of each completed span named [name], from the event
   stream (Begin/End pairing, innermost-first). *)
let span_durs name events =
  let durs = ref [] in
  let stack = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ev_ph with
      | Trace.Begin -> stack := (e.Trace.ev_name, e.Trace.ev_ts) :: !stack
      | Trace.End -> (
          match !stack with
          | (n, t) :: rest ->
              stack := rest;
              if n = name then durs := (e.Trace.ev_ts - t) :: !durs
          | [] -> ())
      | _ -> ())
    events;
  List.rev !durs

let phase_table () =
  let table = Text_table.create ~header:[ "phase"; "n"; "p50"; "p99"; "max" ] in
  let row name hist =
    let n, p50, p99, mx = Metrics.summary hist in
    Text_table.add_row table
      [
        name;
        string_of_int n;
        Units.ns_to_string (int_of_float p50);
        Units.ns_to_string (int_of_float p99);
        Units.ns_to_string (int_of_float mx);
      ]
  in
  row "stop window" (Metrics.histogram "ckpt.stop_ns");
  row "  quiesce" (Metrics.histogram "ckpt.quiesce_ns");
  row "  serialize" (Metrics.histogram "ckpt.serialize_ns");
  row "  shadow" (Metrics.histogram "ckpt.shadow_ns");
  row "speculate window" (Metrics.histogram "ckpt.speculate_ns");
  row "  validate (stop)" (Metrics.histogram "ckpt.validate_ns");
  row "flush submit" (Metrics.histogram "ckpt.flush_ns");
  row "durable lag" (Metrics.histogram "ckpt.durable_lag_ns");
  row "dev queue wait" (Metrics.histogram "dev.queue_wait_ns");
  row "dev service" (Metrics.histogram "dev.service_ns");
  row "store flush window" (Metrics.histogram "store.flush_window_ns");
  Text_table.print table

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m = 0 || go 0

let last_epoch_text () =
  let text = Trace.export_text () in
  let lines = String.split_on_char '\n' text in
  let start = ref (-1) in
  List.iteri (fun i l -> if contains l "> ckpt:epoch" then start := i) lines;
  if !start < 0 then text
  else String.concat "\n" (List.filteri (fun i _ -> i >= !start) lines)

let run ~epochs =
  let _group, stats = run_workload ~epochs in
  Printf.printf "obs-report: %d checkpoint epochs at 100 Hz (virtual time)\n\n"
    epochs;
  phase_table ();
  print_newline ();
  (* Accounting identity on the final epoch: the epoch span's virtual
     duration equals the sum of its phase children, and stop_ns from
     ckpt_stats matches the trace's stop-window phases. *)
  let all_events = Trace.events () in
  let events = all_events in
  (* Restrict the identity to the final epoch's events: a span name that
     only occurs in one cycle shape (serialize vs speculate/validate)
     must not leak in from an earlier epoch of the other shape. *)
  let last_epoch_start = ref 0 in
  List.iteri
    (fun i (e : Trace.event) ->
      if e.Trace.ev_ph = Trace.Begin && e.Trace.ev_name = "epoch" then
        last_epoch_start := i)
    events;
  let events = List.filteri (fun i _ -> i >= !last_epoch_start) events in
  let last_of name =
    match List.rev (span_durs name events) with d :: _ -> d | [] -> 0
  in
  let epoch_dur = last_of "epoch" in
  (* "speculate" and "validate" appear only on speculative epochs;
     "serialize" only on stop-the-world ones — absent spans count 0, so
     one parts list covers both cycle shapes. *)
  let parts =
    [
      "speculate";
      "quiesce";
      "collapse";
      "serialize";
      "validate";
      "shadow";
      "resume";
      "flush";
    ]
  in
  let sum = List.fold_left (fun acc n -> acc + last_of n) 0 parts in
  Printf.printf
    "identity: epoch span %s = %s (speculate+quiesce+collapse+serialize+validate+shadow+resume+flush) -> %s\n"
    (Units.ns_to_string epoch_dur) (Units.ns_to_string sum)
    (if epoch_dur = sum then "OK" else "MISMATCH");
  Printf.printf
    "identity: ckpt_stats stop_ns %s vs trace stop phases %s; flush_ns %s vs flush span %s\n"
    (Units.ns_to_string stats.Group.stop_ns)
    (Units.ns_to_string (sum - last_of "flush" - last_of "speculate"))
    (Units.ns_to_string stats.Group.flush_ns)
    (Units.ns_to_string (last_of "flush"));
  let ok = epoch_dur = sum && Trace.dropped () = 0 in
  (* Chrome trace for chrome://tracing / Perfetto. *)
  let oc = open_out "OBS_trace.json" in
  output_string oc (Trace.export_json ());
  close_out oc;
  Printf.printf "\nwrote OBS_trace.json (%d events, %d dropped)\n"
    (List.length all_events) (Trace.dropped ());
  print_endline "\nfinal epoch timeline (virtual ns):";
  print_string (last_epoch_text ());
  Trace.disable ();
  if not ok then begin
    print_endline "obs-report: FAILED accounting identity";
    exit 1
  end

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  run ~epochs:(if smoke then 6 else 40)
