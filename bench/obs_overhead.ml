(* Observability overhead gate.

   The tracer's contract is that a disabled tracer costs one branch per
   instrumentation site.  Running the flush-scale commit workload with
   and without the code compiled in isn't possible at runtime, so the
   gate proves the claim in two measurable parts:

   1. Disabled per-call cost: tight-loop the public entry points with
      the tracer and registry off and measure the per-call nanoseconds.
   2. Instrumentation density: run the flush-scale incremental-commit
      sweep once with tracing on and count every event the run emits
      (buffered + dropped).  The disabled-state overhead of the same run
      is bounded by (calls x disabled per-call cost), which must stay
      under 1% of the sweep's disabled wall-clock.

   A direct A/B of the sweep with tracing on vs off also runs, with a
   generous bound (enabled tracing buffers events and must stay within
   3x; it is usually well under 1.2x).  Exits non-zero on violation, so
   @bench-smoke fails if instrumentation creeps onto a hot path. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Trace = Aurora_obs.Trace
module Metrics = Aurora_obs.Metrics

let payload i = Bytes.make 64 (Char.chr (32 + (i mod 90)))

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One flush-scale style incremental commit of [n] dirty pages; returns
   the wall-clock of the commit itself. *)
let commit_walltime n =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let oid = Store.alloc_oid store in
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"bench" ~meta:"obs-overhead";
  Store.put_pages store ~oid (List.init n (fun i -> (i, payload i)));
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  ignore (Store.begin_checkpoint store);
  Store.put_pages store ~oid (List.init n (fun i -> (i, payload (i + 1))));
  Gc.compact ();
  let (), w = wall (fun () -> ignore (Store.commit_checkpoint store)) in
  w

let sweep sizes = List.fold_left (fun acc n -> acc +. commit_walltime n) 0.0 sizes

let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let w = f () in
    if w < !best then best := w
  done;
  !best

let per_call_ns iters f =
  Gc.compact ();
  let (), w = wall (fun () -> for _ = 1 to iters do f () done) in
  w *. 1e9 /. float_of_int iters

let () =
  let smoke = Array.length Sys.argv > 1 && Sys.argv.(1) = "smoke" in
  let sizes = if smoke then [ 1024; 4096 ] else [ 1024; 4096; 16384 ] in
  let iters = if smoke then 2_000_000 else 5_000_000 in
  Trace.disable ();
  Metrics.set_enabled false;
  (* 1. Disabled per-call costs. *)
  let c_span =
    per_call_ns iters (fun () -> Trace.with_span ~cat:"x" ~name:"y" (fun () -> ()))
  in
  let c_guard = per_call_ns iters (fun () -> ignore (Trace.is_on ())) in
  let m = Metrics.counter "obs_overhead.probe" in
  let c_incr = per_call_ns iters (fun () -> Metrics.incr m) in
  let c_call = List.fold_left Float.max 0.0 [ c_span; c_guard; c_incr ] in
  Printf.printf
    "disabled per-call: with_span %.2f ns, is_on %.2f ns, Metrics.incr %.2f ns\n"
    c_span c_guard c_incr;
  (* 2. The sweep, off and on. *)
  let w_off = best_of 3 (fun () -> sweep sizes) in
  let count_clock = Clock.create () in
  Trace.enable ~capacity:(1 lsl 20) ~clock:count_clock ();
  Metrics.reset ();
  Metrics.set_enabled true;
  let w_on = best_of 3 (fun () -> sweep sizes) in
  let calls = (List.length (Trace.events ()) + Trace.dropped ()) / 3 in
  Trace.disable ();
  Metrics.set_enabled false;
  (* Each trace event comes from one instrumentation site; bound the
     site's disabled footprint by 8 guarded calls (span + metrics pairs
     around it). *)
  let est_ns = float_of_int (8 * calls) *. c_call in
  let est_pct = est_ns /. (w_off *. 1e9) *. 100.0 in
  let ratio = w_on /. w_off in
  Printf.printf
    "sweep (%s pages): off %.1f ms, on %.1f ms (%.2fx), %d trace calls per sweep\n"
    (String.concat "+" (List.map string_of_int sizes))
    (w_off *. 1e3) (w_on *. 1e3) ratio calls;
  Printf.printf
    "disabled-overhead bound: %d sites x 8 x %.2f ns = %.3f ms = %.3f%% of sweep\n"
    calls c_call (est_ns /. 1e6) est_pct;
  let ok_off = est_pct <= 1.0 in
  (* Noise guard: tiny smoke sweeps jitter; require 3x or 100 ms slack. *)
  let ok_on = w_on <= (3.0 *. w_off) +. 0.1 in
  Printf.printf "gate: disabled <= 1%% %s; enabled bounded %s\n"
    (if ok_off then "OK" else "FAILED")
    (if ok_on then "OK" else "FAILED");
  if not (ok_off && ok_on) then exit 1
