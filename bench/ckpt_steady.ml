(* Steady-state checkpoint cost: group size x mutation ratio sweep.

   A long-running group reaches steady state quickly: most kernel objects
   stop changing between 100 Hz intervals.  This sweep measures what one
   interval then costs.  Each configuration builds a group of G processes
   with P pipe pairs each, mutates a [ratio] fraction of the pipes per
   interval, and takes paired checkpoints: the incremental pass (skip via
   generation stamps) immediately followed by a [~full:true] pass over the
   identical state — the full-reserialize baseline the paper's system
   shadowing always pays for OS state.

   Emits BENCH_ckpt_steady.json next to the binary's working directory.

     dune exec bench/ckpt_steady.exe          # full sweep
     dune exec bench/ckpt_steady.exe smoke    # tiny CI pass *)

module Syscall = Aurora_kern.Syscall
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

type sample = {
  procs : int;
  objects : int;
  ratio : float;
  pipes_dirtied : int;
  inc_serialize_ns : float;
  inc_meta_bytes : float;
  inc_serialized : float;
  inc_skipped : float;
  full_serialize_ns : float;
  full_meta_bytes : float;
}

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))

(* One configuration: G procs, each with [pipes_per_proc] pipe pairs and a
   one-page arena.  OS objects per proc: the proc, 2 descriptions and 1
   pipe per pair. *)
let measure ~procs:g ~pipes_per_proc:pp ~ratio ~intervals =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  let members =
    List.init g (fun i ->
        let p = Syscall.spawn m ~name:(Printf.sprintf "svc%d" i) in
        let pipes = Array.init pp (fun _ -> Syscall.pipe m p) in
        ignore (Syscall.mmap_anon p ~npages:1);
        (p, pipes))
  in
  let all_pipes =
    List.concat_map (fun (p, pipes) -> Array.to_list pipes |> List.map (fun fds -> (p, fds))) members
  in
  let all_pipes = Array.of_list all_pipes in
  let n_pipes = Array.length all_pipes in
  let objects = g * (1 + (3 * pp)) in
  let group = Sls.attach sys (List.map fst members) in
  ignore (Group.checkpoint group);
  let dirty_count = max 1 (int_of_float (Float.round (ratio *. float_of_int n_pipes))) in
  let inc = ref [] and full = ref [] in
  for i = 0 to intervals - 1 do
    (* Mutate a rotating window of pipes; drain what was written so the
       buffered state (and thus the serialized image size) stays bounded. *)
    for k = 0 to dirty_count - 1 do
      let p, (r, w) = all_pipes.(((i * dirty_count) + k) mod n_pipes) in
      ignore (Syscall.write m p ~fd:w "x");
      ignore (Syscall.read m p ~fd:r ~len:1)
    done;
    inc := Group.checkpoint group :: !inc;
    (* Identical state, full reserialization: the baseline. *)
    full := Group.checkpoint ~full:true group :: !full
  done;
  let f sel l = avg (List.map sel l) in
  {
    procs = g;
    objects;
    ratio;
    pipes_dirtied = dirty_count;
    inc_serialize_ns = f (fun s -> float_of_int s.Group.os_serialize_ns) !inc;
    inc_meta_bytes = f (fun s -> float_of_int s.Group.meta_bytes_written) !inc;
    inc_serialized = f (fun s -> float_of_int s.Group.objects_serialized) !inc;
    inc_skipped = f (fun s -> float_of_int s.Group.objects_skipped) !inc;
    full_serialize_ns = f (fun s -> float_of_int s.Group.os_serialize_ns) !full;
    full_meta_bytes = f (fun s -> float_of_int s.Group.meta_bytes_written) !full;
  }

let json_of_samples samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"bench\": \"ckpt_steady\",\n  \"configs\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"procs\": %d, \"objects\": %d, \"mutation_ratio\": %.4f, \
            \"pipes_dirtied\": %d, \"incremental\": {\"serialize_ns\": %.1f, \
            \"meta_bytes\": %.1f, \"objects_serialized\": %.2f, \
            \"objects_skipped\": %.2f}, \"full\": {\"serialize_ns\": %.1f, \
            \"meta_bytes\": %.1f}, \"serialize_speedup\": %.2f, \
            \"meta_reduction\": %.2f}"
           s.procs s.objects s.ratio s.pipes_dirtied s.inc_serialize_ns
           s.inc_meta_bytes s.inc_serialized s.inc_skipped s.full_serialize_ns
           s.full_meta_bytes
           (s.full_serialize_ns /. Float.max 1.0 s.inc_serialize_ns)
           (s.full_meta_bytes /. Float.max 1.0 s.inc_meta_bytes)))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let run ~configs ~intervals =
  print_endline "ckpt-steady: steady-state incremental checkpoint cost";
  print_endline
    "  (paired intervals: incremental pass vs ~full:true reserialization of \
     the same state)";
  print_newline ();
  let table =
    Text_table.create
      ~header:
        [
          "procs";
          "objects";
          "mutation";
          "inc serialize";
          "full serialize";
          "speedup";
          "inc meta";
          "full meta";
          "reduction";
          "ser/skip";
        ]
  in
  let samples =
    List.map
      (fun (g, pp, ratio) -> measure ~procs:g ~pipes_per_proc:pp ~ratio ~intervals)
      configs
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.procs;
          string_of_int s.objects;
          Printf.sprintf "%.0f%%" (s.ratio *. 100.0);
          Units.ns_to_string (int_of_float s.inc_serialize_ns);
          Units.ns_to_string (int_of_float s.full_serialize_ns);
          Printf.sprintf "%.1fx" (s.full_serialize_ns /. Float.max 1.0 s.inc_serialize_ns);
          Printf.sprintf "%.0f B" s.inc_meta_bytes;
          Printf.sprintf "%.0f B" s.full_meta_bytes;
          Printf.sprintf "%.1fx" (s.full_meta_bytes /. Float.max 1.0 s.inc_meta_bytes);
          Printf.sprintf "%.1f/%.1f" s.inc_serialized s.inc_skipped;
        ])
    samples;
  Text_table.print table;
  print_newline ();
  let out = open_out "BENCH_ckpt_steady.json" in
  output_string out (json_of_samples samples);
  close_out out;
  print_endline "wrote BENCH_ckpt_steady.json";
  (* Acceptance gate: at the lowest mutation ratio the incremental pass
     must beat full reserialization by >= 10x on both serialize time and
     staged meta bytes. *)
  let worst =
    List.filter (fun s -> s.ratio <= 0.011) samples
    |> List.map (fun s ->
           ( s.full_serialize_ns /. Float.max 1.0 s.inc_serialize_ns,
             s.full_meta_bytes /. Float.max 1.0 s.inc_meta_bytes ))
  in
  List.iter
    (fun (speedup, reduction) ->
      if speedup < 10.0 || reduction < 10.0 then begin
        Printf.eprintf
          "ckpt-steady: FAIL: 1%% mutation speedup %.1fx / meta reduction %.1fx \
           (need >= 10x)\n"
          speedup reduction;
        exit 1
      end)
    worst;
  if worst <> [] then
    print_endline "acceptance: >= 10x serialize and meta reduction at 1% mutation"

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "smoke" ] ->
      (* Tiny CI pass; still crosses the 10x gate at the ~1% point. *)
      run
        ~configs:[ (8, 5, 0.01); (8, 5, 0.25) ]
        ~intervals:3
  | _ ->
      run
        ~configs:
          [
            (4, 4, 0.01);
            (4, 4, 0.10);
            (4, 4, 0.50);
            (16, 4, 0.01);
            (16, 4, 0.10);
            (16, 4, 0.50);
            (64, 4, 0.01);
            (64, 4, 0.10);
            (64, 4, 0.50);
            (64, 4, 1.00);
          ]
        ~intervals:8
