(* Page-granular dedup + compression: bytes written per checkpoint.

   Sweeps mutation ratio x fork share over a group of processes with
   large anonymous arenas.  Each interval mutates a clustered rotating
   window of pages per process (content varies by interval, so dedup
   never gets free same-content rewrites), checkpoints, and records the
   device bytes the epoch's flush wrote end to end plus the flush window
   (submission to superblock durability).

   Every configuration runs twice on identical deterministic workloads:

   - baseline: [Store.set_content_dedup false] + [set_compression false]
     restores the block-per-page layout with full-block write charges —
     the whole-page flush path previous to the content-addressed index;
   - dedup: the defaults (content index + RLE coding + packed extents).

   Fork share forks a fraction of the group from one parent after arena
   init: the family's COW copies mutate to byte-identical content, which
   only the content index can collapse across objects.

   Emits BENCH_ckpt_dedup.json.

     dune exec bench/ckpt_dedup.exe          # full sweep
     dune exec bench/ckpt_dedup.exe smoke    # tiny CI pass (gated) *)

module Clock = Aurora_sim.Clock
module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Vm_space = Aurora_vm.Vm_space
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let page = 4096

type side = {
  s_bytes : float;  (** device bytes written per checkpoint *)
  s_window_ns : float;  (** checkpoint submission -> durable *)
  s_pages : float;  (** pages staged per checkpoint *)
  s_serialized : float;  (** payloads actually written *)
  s_deduped : float;  (** staged pages resolved by the content index *)
}

type sample = {
  procs : int;
  npages : int;
  fork_share : float;
  ratio : float;
  base : side;
  dedup : side;
}

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))

(* One run: [forked] of the [procs] members are COW children of member 0,
   forked after its arena is initialized; the rest own private arenas
   with per-process content. *)
let run_side ~procs ~npages ~fork_share ~ratio ~intervals ~dedup =
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  if not dedup then begin
    Store.set_content_dedup sys.Sls.store false;
    Store.set_compression sys.Sls.store false
  end;
  let forked = int_of_float (Float.round (fork_share *. float_of_int (procs - 1))) in
  let independents = procs - 1 - forked in
  let stamp_arena p base stamp =
    for pg = 0 to npages - 1 do
      let a = base + (pg * page) in
      Vm_space.write_byte p.Process.space ~addr:(a + 1) (Char.chr (pg land 0xff));
      Vm_space.write_byte p.Process.space ~addr:(a + 2)
        (Char.chr ((pg lsr 8) land 0xff));
      Vm_space.write_byte p.Process.space ~addr:(a + 3) (Char.chr (stamp land 0xff))
    done
  in
  let parent = Syscall.spawn m ~name:"parent" in
  let parent_base = Vm_space.addr_of_entry (Syscall.mmap_anon parent ~npages) in
  stamp_arena parent parent_base 0;
  let children = List.init forked (fun _ -> Syscall.fork m parent) in
  let others =
    List.init independents (fun i ->
        let p = Syscall.spawn m ~name:(Printf.sprintf "ind%d" i) in
        let base = Vm_space.addr_of_entry (Syscall.mmap_anon p ~npages) in
        stamp_arena p base (i + 1);
        (p, base))
  in
  let members =
    ((parent, parent_base) :: List.map (fun c -> (c, parent_base)) children)
    @ others
  in
  let group = Sls.attach sys (List.map fst members) in
  (* Epoch 1 persists the full arenas; the measured intervals are the
     steady state on top of it. *)
  ignore (Group.checkpoint group);
  Store.wait_durable sys.Sls.store;
  let dirty = max 1 (int_of_float (Float.round (ratio *. float_of_int npages))) in
  let clk = Store.clock sys.Sls.store in
  let samples = ref [] in
  for i = 1 to intervals do
    (* Clustered rotating window: real heaps mutate hot regions, and a
       scattered 1% would make rewritten radix leaves — identical in both
       modes — drown the data-byte signal this bench isolates. *)
    let start = i * dirty mod max 1 (npages - dirty) in
    List.iter
      (fun (p, base) ->
        for k = 0 to dirty - 1 do
          Vm_space.write_byte p.Process.space
            ~addr:(base + ((start + k) * page) + 4 + (i mod 40))
            (Char.chr (32 + (i * 7 mod 90)))
        done)
      members;
    let t0 = Clock.now clk in
    let s = Group.checkpoint group in
    Store.wait_durable sys.Sls.store;
    (* Flush window: checkpoint entry to superblock durability, covering
       the synchronous stop phase and the asynchronous flush tail. *)
    samples := (s, s.Group.durable_at - t0) :: !samples
  done;
  let stats = List.map fst !samples in
  {
    s_bytes = avg (List.map (fun s -> float_of_int s.Group.bytes_written) stats);
    s_window_ns = avg (List.map (fun (_, w) -> float_of_int w) !samples);
    s_pages = avg (List.map (fun s -> float_of_int s.Group.pages_flushed) stats);
    s_serialized =
      avg (List.map (fun s -> float_of_int s.Group.pages_serialized) stats);
    s_deduped = avg (List.map (fun s -> float_of_int s.Group.pages_deduped) stats);
  }

let measure ~procs ~npages ~fork_share ~ratio ~intervals =
  let base = run_side ~procs ~npages ~fork_share ~ratio ~intervals ~dedup:false in
  let dedup = run_side ~procs ~npages ~fork_share ~ratio ~intervals ~dedup:true in
  { procs; npages; fork_share; ratio; base; dedup }

let json_of_samples samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"bench\": \"ckpt_dedup\",\n  \"configs\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"procs\": %d, \"npages\": %d, \"fork_share\": %.2f, \
            \"mutation_ratio\": %.4f, \"baseline\": {\"bytes_per_ckpt\": %.0f, \
            \"window_ns\": %.0f, \"pages\": %.1f}, \"dedup\": \
            {\"bytes_per_ckpt\": %.0f, \"window_ns\": %.0f, \"pages\": %.1f, \
            \"pages_serialized\": %.1f, \"pages_deduped\": %.1f}, \
            \"bytes_reduction\": %.2f, \"window_speedup\": %.2f}"
           s.procs s.npages s.fork_share s.ratio s.base.s_bytes
           s.base.s_window_ns s.base.s_pages s.dedup.s_bytes
           s.dedup.s_window_ns s.dedup.s_pages s.dedup.s_serialized
           s.dedup.s_deduped
           (s.base.s_bytes /. Float.max 1.0 s.dedup.s_bytes)
           (s.base.s_window_ns /. Float.max 1.0 s.dedup.s_window_ns)))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let run ~configs ~intervals =
  print_endline "ckpt-dedup: page-granular dedup + compression, bytes per checkpoint";
  print_endline
    "  (paired runs: block-per-page baseline vs content index + RLE + packed \
     extents)";
  print_newline ();
  let table =
    Text_table.create
      ~header:
        [
          "procs";
          "pages";
          "forked";
          "mutation";
          "base bytes";
          "dedup bytes";
          "reduction";
          "base window";
          "dedup window";
          "speedup";
          "ser/dedup";
        ]
  in
  let samples =
    List.map
      (fun (procs, npages, fork_share, ratio) ->
        measure ~procs ~npages ~fork_share ~ratio ~intervals)
      configs
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.procs;
          string_of_int s.npages;
          Printf.sprintf "%.0f%%" (s.fork_share *. 100.0);
          Printf.sprintf "%.0f%%" (s.ratio *. 100.0);
          Units.bytes_to_string (int_of_float s.base.s_bytes);
          Units.bytes_to_string (int_of_float s.dedup.s_bytes);
          Printf.sprintf "%.1fx" (s.base.s_bytes /. Float.max 1.0 s.dedup.s_bytes);
          Units.ns_to_string (int_of_float s.base.s_window_ns);
          Units.ns_to_string (int_of_float s.dedup.s_window_ns);
          Printf.sprintf "%.1fx"
            (s.base.s_window_ns /. Float.max 1.0 s.dedup.s_window_ns);
          Printf.sprintf "%.1f/%.1f" s.dedup.s_serialized s.dedup.s_deduped;
        ])
    samples;
  Text_table.print table;
  print_newline ();
  let out = open_out "BENCH_ckpt_dedup.json" in
  output_string out (json_of_samples samples);
  close_out out;
  print_endline "wrote BENCH_ckpt_dedup.json";
  (* Acceptance gate: at 1% mutation the dedup+compress flush must write
     >= 5x fewer device bytes than the block-per-page baseline and shrink
     the flush window. *)
  let gated = List.filter (fun s -> s.ratio <= 0.011) samples in
  List.iter
    (fun s ->
      let reduction = s.base.s_bytes /. Float.max 1.0 s.dedup.s_bytes in
      let speedup = s.base.s_window_ns /. Float.max 1.0 s.dedup.s_window_ns in
      if reduction < 5.0 || speedup <= 1.0 then begin
        Printf.eprintf
          "ckpt-dedup: FAIL: 1%%-mutation bytes reduction %.1fx (need >= 5x), \
           window speedup %.2fx (need > 1x)\n"
          reduction speedup;
        exit 1
      end)
    gated;
  if gated <> [] then
    print_endline
      "acceptance: >= 5x bytes-written reduction and a shorter flush window at \
       1% mutation"

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "smoke" ] ->
      run ~configs:[ (3, 2048, 0.5, 0.01); (3, 2048, 0.5, 0.25) ] ~intervals:3
  | _ ->
      run
        ~configs:
          [
            (4, 4096, 0.0, 0.01);
            (4, 4096, 0.0, 0.10);
            (4, 4096, 0.0, 0.50);
            (4, 4096, 0.5, 0.01);
            (4, 4096, 0.5, 0.10);
            (4, 4096, 0.5, 0.50);
            (8, 4096, 0.75, 0.01);
            (8, 4096, 0.75, 0.10);
          ]
        ~intervals:5
