(* Quorum replication bench and gate driver.

   `ha_quorum fast` (the @ha-quorum alias, wired into runtest) runs a
   short quorum-torture sweep at N in {3,5}, one pipelined-vs-
   stop-and-wait comparison and one live migration; `ha_quorum deep
   [seed]` (@ha-quorum-deep) sweeps more seeds, rates and rounds;
   `ha_quorum smoke` (part of @bench-smoke) additionally emits
   BENCH_ha_quorum.json and applies the acceptance gates:

     - quorum convergence on 100% of runs (survivors elect an epoch no
       older than the quorum commit point, reference state matches, no
       externally-synchronized message escapes the discarded window);
     - pipelined replication-plane throughput >= 3x stop-and-wait at
       N = 3 over a lossy link;
     - live-migration downtime <= 2 checkpoint periods with a
       byte-identical target.

   Exit status is nonzero on any gate or run failure; every failure
   prints its seed so it reproduces by rerunning with the same
   arguments. *)

module Ha_torture = Aurora_faultsim.Ha_torture

let ok = ref true

let run_quorum_sweep ~seed ~runs_per_cell ~rates ~ns ~rounds =
  let s = Ha_torture.quorum_sweep ~seed ~runs_per_cell ~rates ~ns ~rounds in
  Printf.printf
    "quorum seed=%-8d runs=%-3d ok=%-3d evict=%d rejoin=%d retx=%d \
     released=%d dropped=%d\n\
     %!"
    seed s.Ha_torture.q_runs s.Ha_torture.q_ok s.Ha_torture.q_evictions
    s.Ha_torture.q_rejoins s.Ha_torture.q_retransmits s.Ha_torture.q_released
    s.Ha_torture.q_dropped;
  List.iter
    (fun r -> Printf.printf "  FAIL %s\n%!" (Ha_torture.pp_quorum r))
    s.Ha_torture.q_failures;
  if s.Ha_torture.q_ok <> s.Ha_torture.q_runs then ok := false;
  s

let run_pipeline ~seed ~rounds ~rate ~n =
  let p = Ha_torture.pipeline_vs_stop_and_wait ~seed ~rounds ~rate ~n in
  Printf.printf
    "pipeline n=%d rate=%.2f rounds=%d: plane %.3f ms pipelined vs %.3f ms \
     stop-and-wait (%.1fx), totals %.3f / %.3f ms%s%s\n\
     %!"
    p.Ha_torture.pl_n p.Ha_torture.pl_rate p.Ha_torture.pl_rounds
    (float_of_int p.Ha_torture.pl_pipe_plane_ns /. 1e6)
    (float_of_int p.Ha_torture.pl_sw_plane_ns /. 1e6)
    p.Ha_torture.pl_speedup
    (float_of_int p.Ha_torture.pl_pipe_total_ns /. 1e6)
    (float_of_int p.Ha_torture.pl_sw_total_ns /. 1e6)
    (if p.Ha_torture.pl_pipe_ok then "" else " [pipeline INCOMPLETE]")
    (if p.Ha_torture.pl_sw_ok then "" else " [stop-and-wait INCOMPLETE]");
  if not p.Ha_torture.pl_pipe_ok then ok := false;
  p

let run_migration ~seed ~rate =
  let m = Ha_torture.migration_run ~seed ~rate in
  let r = m.Ha_torture.mc_report in
  Printf.printf
    "migration seed=%d rate=%.2f: %d pre-copy rounds (%d B), final %d B, \
     downtime %.3f ms = %.2f periods, identical=%b: %s\n\
     %!"
    seed rate r.Aurora_core.Replica_set.mig_rounds
    r.Aurora_core.Replica_set.mig_precopy_bytes
    r.Aurora_core.Replica_set.mig_final_bytes
    (float_of_int r.Aurora_core.Replica_set.mig_downtime_ns /. 1e6)
    m.Ha_torture.mc_downtime_periods r.Aurora_core.Replica_set.mig_identical
    m.Ha_torture.mc_outcome;
  if not m.Ha_torture.mc_ok then ok := false;
  m

let fast () =
  ignore
    (run_quorum_sweep ~seed:42 ~runs_per_cell:2 ~rates:[ 0.0; 0.05 ]
       ~ns:[ 3; 5 ] ~rounds:6);
  ignore (run_pipeline ~seed:42 ~rounds:20 ~rate:0.05 ~n:3);
  ignore (run_migration ~seed:42 ~rate:0.0)

let deep seed =
  List.iter
    (fun s ->
      ignore
        (run_quorum_sweep ~seed:s ~runs_per_cell:4
           ~rates:[ 0.0; 0.02; 0.05; 0.08; 0.12 ]
           ~ns:[ 3; 5 ] ~rounds:10))
    [ seed; seed + 1; seed + 2 ];
  List.iter
    (fun rate -> ignore (run_pipeline ~seed ~rounds:30 ~rate ~n:3))
    [ 0.0; 0.05; 0.10 ];
  ignore (run_pipeline ~seed ~rounds:30 ~rate:0.05 ~n:5);
  List.iter
    (fun s ->
      ignore (run_migration ~seed:s ~rate:0.0);
      ignore (run_migration ~seed:s ~rate:0.02))
    [ seed; seed + 1 ]

(* Smoke: the @bench-smoke artifact and its gates. *)

let json_out (q : Ha_torture.quorum_sweep_report)
    (p : Ha_torture.pipeline_report) (m : Ha_torture.migration_check) =
  let r = m.Ha_torture.mc_report in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf
    "  \"quorum\": {\"runs\": %d, \"ok\": %d, \"evictions\": %d, \
     \"rejoins\": %d, \"retransmits\": %d, \"released\": %d, \"dropped\": \
     %d},\n"
    q.Ha_torture.q_runs q.Ha_torture.q_ok q.Ha_torture.q_evictions
    q.Ha_torture.q_rejoins q.Ha_torture.q_retransmits q.Ha_torture.q_released
    q.Ha_torture.q_dropped;
  Printf.bprintf buf
    "  \"pipeline\": {\"n\": %d, \"rate\": %.3f, \"rounds\": %d, \
     \"sw_plane_ns\": %d, \"pipe_plane_ns\": %d, \"sw_total_ns\": %d, \
     \"pipe_total_ns\": %d, \"speedup\": %.2f},\n"
    p.Ha_torture.pl_n p.Ha_torture.pl_rate p.Ha_torture.pl_rounds
    p.Ha_torture.pl_sw_plane_ns p.Ha_torture.pl_pipe_plane_ns
    p.Ha_torture.pl_sw_total_ns p.Ha_torture.pl_pipe_total_ns
    p.Ha_torture.pl_speedup;
  Printf.bprintf buf
    "  \"migration\": {\"rounds\": %d, \"precopy_bytes\": %d, \
     \"final_bytes\": %d, \"downtime_ns\": %d, \"period_ns\": %d, \
     \"downtime_periods\": %.3f, \"identical\": %b}\n"
    r.Aurora_core.Replica_set.mig_rounds
    r.Aurora_core.Replica_set.mig_precopy_bytes
    r.Aurora_core.Replica_set.mig_final_bytes
    r.Aurora_core.Replica_set.mig_downtime_ns m.Ha_torture.mc_period_ns
    m.Ha_torture.mc_downtime_periods r.Aurora_core.Replica_set.mig_identical;
  Printf.bprintf buf "}\n";
  let out = open_out "BENCH_ha_quorum.json" in
  output_string out (Buffer.contents buf);
  close_out out;
  print_endline "wrote BENCH_ha_quorum.json"

let smoke () =
  let q =
    run_quorum_sweep ~seed:42 ~runs_per_cell:2 ~rates:[ 0.0; 0.05 ]
      ~ns:[ 3; 5 ] ~rounds:6
  in
  let p = run_pipeline ~seed:42 ~rounds:20 ~rate:0.05 ~n:3 in
  let m = run_migration ~seed:42 ~rate:0.0 in
  json_out q p m;
  if q.Ha_torture.q_ok <> q.Ha_torture.q_runs then begin
    Printf.printf "GATE FAIL: quorum convergence %d/%d < 100%%\n%!"
      q.Ha_torture.q_ok q.Ha_torture.q_runs;
    ok := false
  end;
  if p.Ha_torture.pl_speedup < 3.0 then begin
    Printf.printf
      "GATE FAIL: pipelined plane speedup %.2fx < 3x stop-and-wait\n%!"
      p.Ha_torture.pl_speedup;
    ok := false
  end;
  if not m.Ha_torture.mc_ok then begin
    Printf.printf "GATE FAIL: migration (%s)\n%!" m.Ha_torture.mc_outcome;
    ok := false
  end

let () =
  (match Array.to_list Sys.argv with
  | _ :: "fast" :: _ | [ _ ] -> fast ()
  | _ :: "smoke" :: _ -> smoke ()
  | _ :: "deep" :: rest ->
      let seed = match rest with s :: _ -> int_of_string s | [] -> 20260809 in
      deep seed
  | _ ->
      prerr_endline "usage: ha_quorum [fast | smoke | deep [seed]]";
      exit 2);
  if not !ok then begin
    prerr_endline "ha_quorum: quorum torture found failures";
    exit 1
  end
