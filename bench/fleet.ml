(* Multi-tenant fleet checkpoint sweep: groups x period x mutation ratio.

   Each configuration boots a fleet of G single-process tenants on one
   virtual clock — per-tenant machine, store and striped array, all flush
   traffic drained through the shared bandwidth arbiter with staggered
   TDM windows — and runs the fleet scheduler for a fixed number of
   periods.  Reported per cell: aggregate checkpoint throughput, the
   worst per-tenant p99 stop time against the identical tenant run alone
   on a private store at the same period, the Jain fairness index over
   per-tenant flushed bytes, flush-span collisions between distinct
   tenants, and the admission-control delay/reject counts.

   Emits BENCH_fleet.json.

     dune exec bench/fleet.exe          # full sweep (up to 128 groups)
     dune exec bench/fleet.exe smoke    # tiny CI pass *)

module Fleet = Aurora_core.Fleet
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

type sample = {
  groups : int;
  period_ns : int;
  ratio : float;
  epochs : int;
  throughput : float; (* checkpoint epochs per virtual second, aggregate *)
  bytes_per_s : float;
  p99_stop_ns : float; (* worst tenant's p99 stop time *)
  solo_p99_ns : float; (* same spec, same period, alone on a private store *)
  jain : float;
  collisions : int;
  delayed : int;
  rejected : int;
  accounting_ok : bool;
}

let spec_of ~ratio i =
  let s = Fleet.default_spec (Printf.sprintf "t%03d" i) in
  (* Mutation ratio = fraction of the tenant's arena dirtied per period. *)
  let dirty =
    max 1 (int_of_float (Float.round (ratio *. float_of_int s.Fleet.sp_arena_pages)))
  in
  { s with Fleet.sp_dirty_pages = dirty }

let measure ~groups ~period_ns ~ratio ~periods =
  let specs = List.init groups (spec_of ~ratio) in
  let f = Fleet.create ~period_ns specs in
  Fleet.run_for f ~duration:(periods * period_ns);
  let r = Fleet.report f in
  let solo = Fleet.solo ~period_ns (List.hd specs) in
  Fleet.solo_run_for solo ~duration:(periods * period_ns);
  let solo_p99 = Fleet.solo_stop_p99 solo in
  let worst_p99 =
    List.fold_left
      (fun acc tr -> Float.max acc tr.Fleet.tr_stop_p99)
      0.0 r.Fleet.r_tenants
  in
  let sum sel = List.fold_left (fun acc tr -> acc + sel tr) 0 r.Fleet.r_tenants in
  {
    groups;
    period_ns;
    ratio;
    epochs = r.Fleet.r_epochs;
    throughput = r.Fleet.r_ckpt_throughput;
    bytes_per_s = r.Fleet.r_bytes_per_s;
    p99_stop_ns = worst_p99;
    solo_p99_ns = solo_p99;
    jain = r.Fleet.r_jain;
    collisions = r.Fleet.r_collisions;
    delayed = sum (fun tr -> tr.Fleet.tr_delayed);
    rejected = sum (fun tr -> tr.Fleet.tr_rejected);
    accounting_ok = r.Fleet.r_accounting_ok;
  }

let slowdown s = s.p99_stop_ns /. Float.max 1.0 s.solo_p99_ns

let json_of_samples samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"bench\": \"fleet\",\n  \"configs\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"groups\": %d, \"period_ns\": %d, \"mutation_ratio\": %.4f, \
            \"epochs\": %d, \"ckpt_throughput_per_s\": %.1f, \
            \"bytes_per_s\": %.0f, \"p99_stop_ns\": %.0f, \
            \"solo_p99_stop_ns\": %.0f, \"p99_slowdown\": %.3f, \
            \"jain\": %.4f, \"collisions\": %d, \"delayed\": %d, \
            \"rejected\": %d, \"accounting_ok\": %b}"
           s.groups s.period_ns s.ratio s.epochs s.throughput s.bytes_per_s
           s.p99_stop_ns s.solo_p99_ns (slowdown s) s.jain s.collisions
           s.delayed s.rejected s.accounting_ok))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Acceptance gates, applied to every measured cell: perfect window
   partitioning (zero cross-tenant flush overlaps), the arbiter's
   attribution identity, and fairness >= 0.9.  The interference gate —
   p99 stop within 3x of the solo baseline — binds at the largest fleet,
   where a shared-lane pileup would show first. *)
let check_gates ~max_groups samples =
  let ok = ref true in
  List.iter
    (fun s ->
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Printf.eprintf "fleet: FAIL [G=%d period=%s mutation=%.0f%%]: %s\n"
              s.groups
              (Units.ns_to_string s.period_ns)
              (s.ratio *. 100.0) msg;
            ok := false)
          fmt
      in
      if s.collisions <> 0 then fail "%d flush-window collisions" s.collisions;
      if not s.accounting_ok then fail "lane attribution identity violated";
      if s.jain < 0.9 then fail "jain %.3f < 0.9" s.jain;
      if s.groups >= max_groups && slowdown s > 3.0 then
        fail "p99 stop %.0f ns > 3x solo %.0f ns" s.p99_stop_ns s.solo_p99_ns)
    samples;
  !ok

let run ~configs ~periods ~max_groups =
  print_endline
    "fleet: multi-tenant interleaved checkpointing (shared clock, shared \
     flush lane, staggered TDM windows)";
  print_newline ();
  let samples =
    List.map
      (fun (groups, period_ns, ratio) -> measure ~groups ~period_ns ~ratio ~periods)
      configs
  in
  let table =
    Text_table.create
      ~header:
        [
          "groups";
          "period";
          "mutation";
          "epochs";
          "ckpt/s";
          "p99 stop";
          "solo p99";
          "slowdown";
          "jain";
          "coll";
          "delay/rej";
        ]
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.groups;
          Units.ns_to_string s.period_ns;
          Printf.sprintf "%.0f%%" (s.ratio *. 100.0);
          string_of_int s.epochs;
          Printf.sprintf "%.1f" s.throughput;
          Units.ns_to_string (int_of_float s.p99_stop_ns);
          Units.ns_to_string (int_of_float s.solo_p99_ns);
          Printf.sprintf "%.2fx" (slowdown s);
          Printf.sprintf "%.3f" s.jain;
          string_of_int s.collisions;
          Printf.sprintf "%d/%d" s.delayed s.rejected;
        ])
    samples;
  Text_table.print table;
  print_newline ();
  let out = open_out "BENCH_fleet.json" in
  output_string out (json_of_samples samples);
  close_out out;
  print_endline "wrote BENCH_fleet.json";
  if not (check_gates ~max_groups samples) then exit 1;
  Printf.printf
    "acceptance: zero collisions, jain >= 0.9, lane accounting exact, p99 \
     within 3x of solo at %d groups\n"
    max_groups

let () =
  let ms = 1_000_000 in
  match Array.to_list Sys.argv with
  | _ :: [ "smoke" ] ->
      run
        ~configs:[ (2, 10 * ms, 0.25); (4, 10 * ms, 1.0) ]
        ~periods:6 ~max_groups:4
  | _ ->
      run
        ~configs:
          [
            (1, 10 * ms, 0.25);
            (8, 10 * ms, 0.25);
            (8, 10 * ms, 1.0);
            (32, 10 * ms, 0.25);
            (32, 10 * ms, 1.0);
            (32, 5 * ms, 1.0);
            (128, 10 * ms, 0.25);
            (128, 10 * ms, 1.0);
            (128, 5 * ms, 1.0);
          ]
        ~periods:12 ~max_groups:128
