(* HA torture sweep driver.

   `ha_torture_sweep fast` (the @ha-torture alias, wired into runtest)
   runs both negative controls plus a short failover sweep at fault
   rates up to 10%; `ha_torture_sweep deep [seed]` (@ha-torture-deep)
   sweeps more seeds, more rounds and more rates.  Exit status is
   nonzero on any run whose recovered state contradicts the reference
   model, on a missed fallback in the negative controls, or on an
   uncaught exception anywhere.  Every failure prints its seed and rate
   so it reproduces by rerunning with the same arguments. *)

module Ha_torture = Aurora_faultsim.Ha_torture

let ok = ref true

let control label mode =
  match Ha_torture.negative_control ~seed:1 ~mode with
  | Ok () -> Printf.printf "control %-5s corrupted newest epoch skipped\n%!" label
  | Error e ->
      Printf.printf "control %-5s FAIL %s\n%!" label e;
      ok := false

let run_sweep ?(speculative = false) ~seed ~runs_per_rate ~rates ~rounds () =
  let s = Ha_torture.sweep ~speculative ~seed ~runs_per_rate ~rates ~rounds () in
  Printf.printf
    "sweep %-5s seed=%-8d runs=%-3d ok=%-3d shipped=%d retx=%d dups=%d \
     rejects=%d fallbacks=%d\n\
     %!"
    (if speculative then "spec" else "stw")
    seed s.Ha_torture.h_runs s.Ha_torture.h_ok s.Ha_torture.h_shipments
    s.Ha_torture.h_retransmits s.Ha_torture.h_dup_acks
    s.Ha_torture.h_verify_rejects s.Ha_torture.h_fallbacks;
  List.iter
    (fun r -> Printf.printf "  FAIL %s\n%!" (Ha_torture.pp_run r))
    s.Ha_torture.h_failures;
  if s.Ha_torture.h_ok <> s.Ha_torture.h_runs then ok := false

let fast () =
  control "meta" Ha_torture.Meta;
  control "page" Ha_torture.Page;
  run_sweep ~seed:42 ~runs_per_rate:3 ~rates:[ 0.0; 0.05; 0.10 ] ~rounds:6 ();
  run_sweep ~speculative:true ~seed:42 ~runs_per_rate:3
    ~rates:[ 0.0; 0.05; 0.10 ] ~rounds:6 ()

let deep seed =
  control "meta" Ha_torture.Meta;
  control "page" Ha_torture.Page;
  List.iter
    (fun s ->
      run_sweep ~seed:s ~runs_per_rate:8
        ~rates:[ 0.0; 0.01; 0.02; 0.05; 0.08; 0.10 ]
        ~rounds:12 ();
      run_sweep ~speculative:true ~seed:s ~runs_per_rate:8
        ~rates:[ 0.0; 0.01; 0.02; 0.05; 0.08; 0.10 ]
        ~rounds:12 ())
    [ seed; seed + 1; seed + 2 ]

let () =
  (match Array.to_list Sys.argv with
  | _ :: "fast" :: _ | [ _ ] -> fast ()
  | _ :: "deep" :: rest ->
      let seed = match rest with s :: _ -> int_of_string s | [] -> 20260807 in
      deep seed
  | _ ->
      prerr_endline "usage: ha_torture_sweep [fast | deep [seed]]";
      exit 2);
  if not !ok then begin
    prerr_endline "ha_torture_sweep: HA torture found failures";
    exit 1
  end
