(* Flush-pipeline scaling: sweep the dirty-set size of one incremental
   checkpoint and report both the simulated flush time (virtual ns until
   the epoch is durable) and the simulator's own host wall-clock, plus the
   coalescing statistics (extents, device submissions, leaf-cache hits).

   The "legacy" column replays the seed implementation's hot path on the
   same input — assoc-list staging with List.mem_assoc dedup, one
   Striped.write per 4 KiB block, List.assoc leaf lookups — to quantify
   the win of hashtable staging plus extent-coalesced vectored writes. *)

module Clock = Aurora_sim.Clock
module Striped = Aurora_block.Striped
module Store = Aurora_objstore.Store
module Wire = Aurora_objstore.Wire
module Text_table = Aurora_util.Text_table
module Units = Aurora_util.Units

let payload i = Bytes.make 64 (Char.chr (32 + (i mod 90)))

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Leaf wire format, exactly as the seed's store wrote and parsed it. *)
let serialize_leaf entries =
  let w = Wire.writer () in
  Wire.u8 w 0xA3;
  Wire.list w
    (fun (idx, blk, len) ->
      Wire.u32 w idx;
      Wire.u64 w blk;
      Wire.u32 w len)
    entries;
  Wire.contents w

let parse_leaf data =
  let r = Wire.reader data in
  ignore (Wire.ru8 r);
  Wire.rlist r (fun r ->
      let idx = Wire.ru32 r in
      let blk = Wire.ru64 r in
      let len = Wire.ru32 r in
      (idx, blk, len))

(* The seed's commit hot path, replayed faithfully: staged pages as a
   newest-first assoc list, per-leaf dedup and carried/replaced filtering
   via List.mem_assoc, List.assoc lookups into the previous version's
   assoc-list leaf directory, a real per-leaf device re-read
   (Striped.read_nocharge walks the whole in-flight list, which grows
   with every block this commit writes), and one Striped.write per data
   block and per rewritten leaf.  The device state is pre-populated with
   a committed n-page version, like the incremental commit the new path
   is timed on. *)
let legacy_commit_walltime n =
  let leaf_span = Store.leaf_span in
  let dev = Striped.create () in
  let block_size = 4096 in
  let next_block = ref 1 in
  let alloc () =
    let b = !next_block in
    incr next_block;
    b
  in
  let now = 0 in
  (* Epoch 1: committed version covering pages 0..n-1, leaves on disk. *)
  let prev_leaves =
    List.init
      ((n + leaf_span - 1) / leaf_span)
      (fun leaf_idx ->
        let lo = leaf_idx * leaf_span and hi = min n ((leaf_idx + 1) * leaf_span) in
        let entries =
          List.init (hi - lo) (fun k ->
              let idx = lo + k in
              let blk = alloc () in
              ignore
                (Striped.write ~charge:block_size dev ~now ~off:(blk * block_size)
                   (payload idx));
              (idx, blk, 64))
        in
        let leaf_blk = alloc () in
        ignore
          (Striped.write ~charge:block_size dev ~now
             ~off:(leaf_blk * block_size) (serialize_leaf entries));
        (leaf_idx, leaf_blk))
  in
  Striped.apply_durable dev ~now:max_int;
  let refcounts = Hashtbl.create (2 * n) in
  let pages = List.init n (fun i -> (i, payload (i + 1))) in
  let ops_before = Striped.write_ops dev in
  Gc.compact ();
  let _, elapsed =
    wall (fun () ->
        (* put_pages: rev_append staging. *)
        let s_pages = List.rev_append pages [] in
        (* commit: group by leaf, dedup with List.mem_assoc. *)
        let by_leaf = Hashtbl.create 16 in
        List.iter
          (fun (idx, p) ->
            let leaf = idx / leaf_span in
            let cur = Option.value ~default:[] (Hashtbl.find_opt by_leaf leaf) in
            if not (List.mem_assoc idx cur) then
              Hashtbl.replace by_leaf leaf ((idx, p) :: cur))
          s_pages;
        Hashtbl.iter
          (fun leaf_idx dirty ->
            (* Carry over unchanged entries from the device: this re-read
               overlays every in-flight write (O(inflight) per leaf). *)
            let old_entries =
              match List.assoc_opt leaf_idx prev_leaves with
              | None -> []
              | Some blk ->
                  parse_leaf
                    (Striped.read_nocharge dev ~off:(blk * block_size)
                       ~len:block_size)
            in
            let carried =
              List.filter
                (fun (idx, _, _) -> not (List.mem_assoc idx dirty))
                old_entries
            in
            let replaced =
              List.filter (fun (idx, _, _) -> List.mem_assoc idx dirty) old_entries
            in
            List.iter
              (fun (_, blk, _) ->
                match Hashtbl.find_opt refcounts blk with
                | Some c when c > 1 -> Hashtbl.replace refcounts blk (c - 1)
                | Some _ -> Hashtbl.remove refcounts blk
                | None -> ())
              replaced;
            (* One device write per data block. *)
            let fresh_entries =
              List.map
                (fun (idx, p) ->
                  let blk = alloc () in
                  ignore
                    (Striped.write ~charge:block_size dev ~now
                       ~off:(blk * block_size) p);
                  Hashtbl.replace refcounts blk 1;
                  (idx, blk, Bytes.length p))
                dirty
            in
            let entries = List.sort compare (fresh_entries @ carried) in
            let leaf_blk = alloc () in
            (* One device write per rewritten leaf. *)
            ignore
              (Striped.write ~charge:block_size dev ~now
                 ~off:(leaf_blk * block_size) (serialize_leaf entries)))
          by_leaf)
  in
  (elapsed, Striped.write_ops dev - ops_before)

type sample = {
  pages : int;
  sim_flush_ns : int;
  wall_s : float;
  stats : Store.flush_stats;
  legacy_wall_s : float;
  legacy_ops : int;
}

let measure n =
  let clock = Clock.create () in
  let dev = Striped.create () in
  let store = Store.format ~dev ~clock in
  let oid = Store.alloc_oid store in
  (* Epoch 1 populates the object so epoch 2 is a true incremental commit
     that re-reads (or cache-hits) every touched leaf. *)
  ignore (Store.begin_checkpoint store);
  Store.put_object store ~oid ~kind:"bench" ~meta:"flush-scale";
  Store.put_pages store ~oid (List.init n (fun i -> (i, payload i)));
  ignore (Store.commit_checkpoint store);
  Store.wait_durable store;
  ignore (Store.begin_checkpoint store);
  Store.put_pages store ~oid (List.init n (fun i -> (i, payload (i + 1))));
  let t0 = Clock.now clock in
  Gc.compact ();
  let (), wall_s = wall (fun () -> ignore (Store.commit_checkpoint store)) in
  let sim_flush_ns = Store.durable_at store - t0 in
  let stats = Store.flush_stats store in
  let legacy_wall_s, legacy_ops = legacy_commit_walltime n in
  { pages = n; sim_flush_ns; wall_s; stats; legacy_wall_s; legacy_ops }

let run ?(sizes = [ 256; 1024; 4096; 16384; 65536 ]) () =
  (* A bench-sized minor heap (128 MB) for the duration of the sweep:
     both pipelines allocate device payload copies proportional to the
     dirty set, and the stock 2 MB nursery would turn that into promotion
     churn that swamps the algorithmic difference being measured.
     Restored afterwards so other artifacts run under stock settings. *)
  let gc0 = Gc.get () in
  Gc.set { gc0 with Gc.minor_heap_size = 1 lsl 24 };
  Fun.protect ~finally:(fun () -> Gc.set gc0) @@ fun () ->
  print_endline "flush-scale: coalesced checkpoint flush vs dirty-set size";
  print_endline
    "  (one object, incremental commit; legacy = seed's per-block assoc-list path)";
  print_newline ();
  let table =
    Text_table.create
      ~header:
        [
          "dirty pages";
          "sim flush";
          "extents";
          "dev subs";
          "legacy subs";
          "leaf hit/miss";
          "wall";
          "legacy wall";
          "speedup";
        ]
  in
  let samples = List.map measure sizes in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.pages;
          Units.ns_to_string s.sim_flush_ns;
          string_of_int s.stats.Store.fs_extents;
          string_of_int s.stats.Store.fs_dev_writes;
          string_of_int s.legacy_ops;
          Printf.sprintf "%d/%d" s.stats.Store.fs_leaf_hits
            s.stats.Store.fs_leaf_misses;
          Printf.sprintf "%.1f ms" (s.wall_s *. 1e3);
          Printf.sprintf "%.1f ms" (s.legacy_wall_s *. 1e3);
          Printf.sprintf "%.1fx" (s.legacy_wall_s /. max 1e-9 s.wall_s);
        ])
    samples;
  Text_table.print table;
  (match List.rev samples with
  | biggest :: _ ->
      Printf.printf
        "largest sweep: %d pages -> %d extents (avg %.0f blocks/extent), %d \
         device submissions (legacy: %d), %s coalesced\n"
        biggest.pages biggest.stats.Store.fs_extents
        (float_of_int biggest.stats.Store.fs_extent_blocks
        /. float_of_int (max 1 biggest.stats.Store.fs_extents))
        biggest.stats.Store.fs_dev_writes biggest.legacy_ops
        (Units.bytes_to_string biggest.stats.Store.fs_coalesced_bytes)
  | [] -> ());
  print_newline ()
