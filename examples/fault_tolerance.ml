(* Fault tolerance: continuous checkpoint shipping to a hot standby, with
   record/replay closing the gap between the last shipped checkpoint and
   the crash (paper sections 3 and 10).
   Run with: dune exec examples/fault_tolerance.exe *)

module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Machine = Aurora_kern.Machine
module Vm_space = Aurora_vm.Vm_space
module Units = Aurora_util.Units
module Store = Aurora_objstore.Store
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Ha = Aurora_core.Ha
module Replay = Aurora_core.Replay

let () =
  (* Primary: a service under transparent persistence, with a recorder
     capturing its non-deterministic inputs. *)
  let primary = Sls.boot () in
  let m = primary.Sls.machine in
  let svc = Syscall.spawn m ~name:"stateful-service" in
  let arena = Syscall.mmap_anon svc ~npages:2048 in
  let addr = Vm_space.addr_of_entry arena in
  Vm_space.touch_write svc.Process.space ~addr ~len:(2048 * 4096);
  let inbox_tx, inbox_rx = Syscall.socketpair m svc in
  let group = Sls.attach primary [ svc ] in
  let recorder = Replay.Recorder.attach group in

  (* Standby: an empty machine whose store receives the stream. *)
  let standby = Sls.boot () in
  let ha = Ha.create ~primary:group ~standby_store:standby.Sls.store () in

  (* Steady state: serve requests, checkpoint, replicate. *)
  for round = 1 to 3 do
    Syscall.send_msg m svc ~fd:inbox_tx (Printf.sprintf "request-%d" round);
    (match Replay.Recorder.recv_msg recorder svc ~fd:inbox_rx with
    | Some req -> Vm_space.write_string svc.Process.space ~addr req
    | None -> ());
    ignore (Group.checkpoint ~wait_durable:true group);
    Replay.Recorder.on_checkpoint recorder;
    let bytes =
      match Ha.replicate_result ha with Ok b -> b | Error e -> failwith e
    in
    Printf.printf "round %d: checkpointed and shipped %s to the standby\n" round
      (Units.bytes_to_string bytes)
  done;

  (* One more request arrives and is recorded — but the primary dies
     before the next checkpoint ships. *)
  Syscall.send_msg m svc ~fd:inbox_tx "request-4";
  (match Replay.Recorder.recv_msg recorder svc ~fd:inbox_rx with
  | Some req -> Vm_space.write_string svc.Process.space ~addr req
  | None -> ());
  let jid = Replay.Recorder.journal_id recorder in
  print_endline "-- primary machine lost --";

  (* Failover: restore the last shipped checkpoint on the standby. *)
  let takeover = Machine.create () in
  let result = Ha.failover ha ~machine:takeover in
  let svc' = List.hd result.Aurora_core.Restore.procs in
  Printf.printf "standby took over at replicated epoch %d: state %S\n"
    (Ha.shipped_epoch ha)
    (Vm_space.read_string svc'.Process.space ~addr ~len:9);

  (* The primary's own store survives on its devices: recover it and
     replay the recorded inputs since the last checkpoint to close the
     gap (here, request-4). *)
  let m2 = Machine.create () in
  let primary_store = Store.recover ~dev:primary.Sls.device ~clock:m2.Machine.clock in
  let log = Replay.recover ~store:primary_store ~journal_id:jid in
  Printf.printf "replay log holds %d un-shipped input(s)\n" (List.length log);
  let replayer = Replay.Replayer.create log in
  (match Replay.Replayer.recv_msg replayer ~fd:inbox_rx with
  | Some req ->
      Vm_space.write_string svc'.Process.space ~addr req;
      Printf.printf "replayed %S on the standby: state %S — nothing lost\n" req
        (Vm_space.read_string svc'.Process.space ~addr ~len:9)
  | None -> print_endline "nothing to replay")
