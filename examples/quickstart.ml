(* Quickstart: transparent persistence in five steps.

   An application builds state in memory and in files, Aurora checkpoints
   it, the machine loses power, and the application comes back exactly
   where it was — including the file descriptor offsets and the CPU
   registers.  Run with: dune exec examples/quickstart.exe *)

module Syscall = Aurora_kern.Syscall
module Process = Aurora_kern.Process
module Thread = Aurora_kern.Thread
module Vm_space = Aurora_vm.Vm_space
module Units = Aurora_util.Units
module Clock = Aurora_sim.Clock
module Sls = Aurora_core.Sls
module Group = Aurora_core.Group
module Restore = Aurora_core.Restore

let () =
  (* 1. Boot a machine: 4-way NVMe array, object store, Aurora FS. *)
  let sys = Sls.boot () in
  let m = sys.Sls.machine in
  print_endline "booted: 4x NVMe striped array, object store formatted";

  (* 2. Run an application that builds up state. *)
  let app = Syscall.spawn m ~name:"notebook" in
  let arena = Syscall.mmap_anon app ~npages:64 in
  let addr = Vm_space.addr_of_entry arena in
  Vm_space.write_string app.Process.space ~addr "draft: single level stores rock";
  let fd = Syscall.open_file m app ~path:"/notes.txt" ~create:true in
  ignore (Syscall.write m app ~fd "saved note\n");
  Thread.set_rip (Process.main_thread app) 0xfeedface;
  print_endline "app wrote memory, a file, and has live CPU state";

  (* 3. Attach to Aurora: transparent checkpoints every 10 ms. *)
  let group = Sls.attach sys [ app ] in
  let stats = Group.checkpoint ~wait_durable:true group in
  Printf.printf "checkpoint %d: stop time %s, %d pages flushed\n"
    stats.Group.epoch
    (Units.ns_to_string stats.Group.stop_ns)
    stats.Group.pages_flushed;

  (* 4. Power failure.  Everything volatile is gone. *)
  print_endline "-- power failure --";

  (* 5. Reboot and restore. *)
  let sys', result = Sls.reboot_and_restore sys in
  let app' = List.hd result.Restore.procs in
  Printf.printf "restored in %s\n" (Units.ns_to_string result.Restore.restore_ns);
  Printf.printf "memory:   %S\n"
    (Vm_space.read_string app'.Process.space ~addr ~len:31);
  ignore (Syscall.lseek app' ~fd ~off:0);
  Printf.printf "file:     %S\n" (Syscall.read sys'.Sls.machine app' ~fd ~len:64);
  Printf.printf "cpu rip:  %#x\n" (Process.main_thread app').Thread.regs.Thread.rip;
  Printf.printf "local pid preserved: %b\n"
    (app'.Process.pid_local = app.Process.pid_local);
  print_endline "the application never knew"
